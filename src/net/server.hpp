#pragma once
// Loopback HTTP front end: the Figure 9 service over real sockets.
//
// A net::Server owns one Reactor, a listening socket, and the connection
// table. Socket readiness becomes work in the paper's model, not around
// it: every complete HTTP request is dispatched onto a named virtual
// target with `name_as` (so the server can drain with wait(tag)), the
// handler runs on the worker target exactly like a simulated-connector
// request, and its completion posts the encoded response back to the
// reactor — which is itself registered as a virtual target, so the
// continuation-in-place style survives the hop onto real I/O.
//
// Admission control is a two-level hysteresis state machine keyed on the
// server-wide in-flight count:
//
//            inflight >= high_watermark
//   ADMIT ───────────────────────────────▶ SHED
//     ▲                                     │
//     └─────────────────────────────────────┘
//            inflight <= low_watermark
//
// In SHED, a request parsed off a socket is answered 503 immediately from
// the reactor thread — before it occupies a worker-queue slot — and the
// accept gate closes (the listener leaves the epoll set, so the kernel
// backlog absorbs new connections instead of the connection table).
// Dropping back through the low watermark re-admits and re-opens the
// gate. A secondary depth bound on the target's injection queue sheds
// individual requests without a state change. All shed and transition
// counts are published through common::Tracer.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.hpp"
#include "core/runtime.hpp"
#include "httpsim/request.hpp"
#include "net/reactor.hpp"
#include "net/socket.hpp"

namespace evmp::net {

struct Connection;  // per-socket state; reactor-thread only (server.cpp)

/// Counter snapshot (relaxed atomics; monotone while running).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t requests_received = 0;  ///< complete requests parsed
  std::uint64_t requests_admitted = 0;  ///< dispatched to the target
  std::uint64_t requests_shed = 0;      ///< rejected with a 503
  std::uint64_t responses_sent = 0;     ///< handler responses queued
  std::uint64_t responses_dropped = 0;  ///< connection gone at completion
  std::uint64_t protocol_errors = 0;    ///< malformed input (closes conn)
  std::uint64_t idle_closed = 0;        ///< closed by the idle timer
  std::uint64_t shed_entries = 0;       ///< ADMIT -> SHED transitions
  std::uint64_t accept_gate_closes = 0;  ///< times the gate shut
  std::uint64_t bytes_received = 0;
  std::uint64_t bytes_sent = 0;
};

/// The loopback request/response server.
class Server {
 public:
  enum class Mode : std::uint8_t {
    kEcho,     ///< checksum + echo the payload back (I/O-bound)
    kHandler,  ///< run Config::handler, e.g. EncryptionService (CPU-bound)
  };

  struct Config {
    std::uint16_t port = 0;  ///< 0 = ephemeral; see Server::port()
    Mode mode = Mode::kEcho;
    /// Virtual target handling request bodies. Must be registered with
    /// the runtime before start() (the server does not own it).
    std::string target = "worker";
    /// Handler for Mode::kHandler (e.g. http::EncryptionService::handler).
    http::RequestHandler handler;
    /// Watermarks on admitted-but-unanswered requests. Crossing the high
    /// mark enters SHED (503s + accept gate); dropping to the low mark
    /// leaves it. low must be < high; 0 high disables the state machine.
    std::size_t high_watermark = 4096;
    std::size_t low_watermark = 3072;
    /// Bound on the target executor's queued-task depth at admission time
    /// (0 = off). This is the backpressure seam onto the sharded
    /// injection queues: depth beyond the bound sheds instead of queueing.
    std::size_t max_target_depth = 0;
    /// Connection-table bound (0 = off). At the bound the accept gate
    /// closes until a connection dies.
    std::size_t max_connections = 0;
    /// Close connections with no traffic for this long (0 = off). Checked
    /// by a per-connection wheel timer that re-arms itself, so an active
    /// connection never pays a cancel.
    common::Nanos idle_timeout{0};
    /// Counter prefix, reactor name, and the virtual-target name the
    /// reactor is registered under.
    std::string name = "net";
  };

  Server(Runtime& rt, Config cfg);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, register the reactor as a virtual target, start the loop.
  /// Throws std::system_error when the listener cannot be created.
  void start();

  /// Stop accepting, drain in-flight handlers (wait(tag)-style join),
  /// flush and close connections, join the reactor, publish counters.
  /// Idempotent.
  void stop();

  /// The bound port (valid after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] ServerStats stats() const noexcept;
  [[nodiscard]] Reactor& reactor() noexcept { return reactor_; }
  [[nodiscard]] bool shedding() const noexcept {
    return shedding_.load(std::memory_order_relaxed);
  }

  /// Export the counters as "<name>.<counter>" through common::Tracer
  /// (also called by stop()).
  void publish_counters() const;

 private:
  friend struct Connection;
  class Acceptor;

  // Reactor-thread only.
  void on_request(Connection& conn, std::uint64_t id, bool keep_alive,
                  std::vector<std::uint8_t> payload);
  void handle_on_worker(std::uint64_t cid, std::uint64_t id,
                        std::vector<std::uint8_t> payload,
                        common::TimePoint arrived);
  void complete(std::uint64_t cid, std::vector<std::uint8_t> wire);
  void defer_destroy(std::uint64_t cid);
  void update_admission_on_admit();
  void update_admission_on_complete();
  void close_accept_gate();
  void maybe_open_accept_gate();
  void arm_idle_timer(Connection& conn);

  Runtime& rt_;
  Config cfg_;
  Reactor reactor_;
  Fd listen_;
  std::uint16_t port_ = 0;
  std::unique_ptr<Acceptor> acceptor_;
  std::string drain_tag_;
  bool started_ = false;
  bool stopped_ = false;

  // Reactor-thread state.
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::uint64_t next_cid_ = 1;
  exec::Executor* target_exec_ = nullptr;  ///< resolved at start()
  bool accept_gated_ = false;
  bool accepting_ = false;  ///< listener is in the epoll set

  // Written on the reactor thread, read anywhere (observability).
  std::atomic<std::uint64_t> inflight_{0};
  std::atomic<bool> shedding_{false};

  struct AtomicStats {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connections_closed{0};
    std::atomic<std::uint64_t> requests_received{0};
    std::atomic<std::uint64_t> requests_admitted{0};
    std::atomic<std::uint64_t> requests_shed{0};
    std::atomic<std::uint64_t> responses_sent{0};
    std::atomic<std::uint64_t> responses_dropped{0};
    std::atomic<std::uint64_t> protocol_errors{0};
    std::atomic<std::uint64_t> idle_closed{0};
    std::atomic<std::uint64_t> shed_entries{0};
    std::atomic<std::uint64_t> accept_gate_closes{0};
    std::atomic<std::uint64_t> bytes_received{0};
    std::atomic<std::uint64_t> bytes_sent{0};
  };
  AtomicStats stats_;
};

}  // namespace evmp::net

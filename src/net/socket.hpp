#pragma once
// Thin POSIX socket layer under the reactor: RAII descriptors and the
// handful of loopback TCP helpers the server and the load generator share.
// Everything is non-blocking by construction — the reactor model forbids
// a blocking syscall on the event thread.

#include <cstddef>
#include <cstdint>

namespace evmp::net {

/// RAII owner of a file descriptor (socket, eventfd, epoll instance).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// Give up ownership without closing.
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Close the current descriptor (if any) and adopt `fd`.
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

/// O_NONBLOCK via fcntl; true on success.
bool set_nonblocking(int fd) noexcept;

/// TCP_NODELAY (request/response exchanges are latency-sensitive and
/// smaller than a segment; Nagle would serialise them against delayed
/// ACKs); true on success.
bool set_nodelay(int fd) noexcept;

/// Create a non-blocking listening TCP socket bound to 127.0.0.1:`port`
/// (0 = kernel-assigned ephemeral port, reported via `bound_port`).
/// Returns an invalid Fd and leaves errno set on failure.
Fd listen_tcp_loopback(std::uint16_t port, std::uint16_t* bound_port,
                       int backlog = 4096);

/// Start a non-blocking connect to 127.0.0.1:`port`. The returned socket
/// is connecting (EINPROGRESS) or connected; completion is observed as
/// writability. Invalid Fd + errno on immediate failure.
Fd connect_tcp_loopback(std::uint16_t port);

/// Raise RLIMIT_NOFILE so the process can hold at least `needed`
/// descriptors (the 100k-connection harness needs ~2 fds per loopback
/// connection). Raises the hard limit too when privileged; returns false
/// when the limit cannot reach `needed`.
bool raise_fd_limit(std::size_t needed) noexcept;

}  // namespace evmp::net

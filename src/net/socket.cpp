#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace evmp::net {

void Fd::reset(int fd) noexcept {
  if (fd_ >= 0) {
    // EINTR on close is not retried: Linux releases the descriptor either
    // way, and a retry could close a descriptor reused by another thread.
    ::close(fd_);
  }
  fd_ = fd;
}

bool set_nonblocking(int fd) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool set_nodelay(int fd) noexcept {
  const int one = 1;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) == 0;
}

namespace {
sockaddr_in loopback_addr(std::uint16_t port) noexcept {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}
}  // namespace

Fd listen_tcp_loopback(std::uint16_t port, std::uint16_t* bound_port,
                       int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return {};
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return {};
  }
  if (::listen(fd.get(), backlog) != 0) return {};
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      return {};
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

Fd connect_tcp_loopback(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return {};
  sockaddr_in addr = loopback_addr(port);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    return {};
  }
  return fd;
}

bool raise_fd_limit(std::size_t needed) noexcept {
  rlimit lim{};
  if (::getrlimit(RLIMIT_NOFILE, &lim) != 0) return false;
  if (lim.rlim_cur != RLIM_INFINITY && lim.rlim_cur >= needed) return true;
  rlimit want = lim;
  want.rlim_cur = std::max<rlim_t>(needed, lim.rlim_cur);
  if (lim.rlim_max != RLIM_INFINITY && want.rlim_cur > lim.rlim_max) {
    // Soft limit cannot exceed the hard limit; try raising both (allowed
    // for privileged processes, up to the kernel's fs.nr_open).
    want.rlim_max = want.rlim_cur;
  }
  if (::setrlimit(RLIMIT_NOFILE, &want) == 0) return true;
  // Unprivileged fallback: take the whole hard limit and report whether
  // that reaches the request.
  want.rlim_cur = lim.rlim_max;
  want.rlim_max = lim.rlim_max;
  if (::setrlimit(RLIMIT_NOFILE, &want) != 0) return false;
  return lim.rlim_max == RLIM_INFINITY || lim.rlim_max >= needed;
}

}  // namespace evmp::net

#include "net/load_client.hpp"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "net/http.hpp"

namespace evmp::net {

namespace {
constexpr std::size_t kReadChunk = 16 * 1024;
constexpr std::size_t kConnectWave = 2048;  ///< stay under the listen backlog
}  // namespace

LoadClient::LoadClient(std::uint16_t port, std::size_t conns,
                       std::size_t payload, std::uint64_t seed)
    : epoll_(::epoll_create1(EPOLL_CLOEXEC)), port_(port), rng_(seed) {
  payload_.resize(payload);
  for (std::size_t i = 0; i < payload_.size(); ++i) {
    payload_[i] = static_cast<std::uint8_t>(rng_.next());
  }
  expected_sum_ = fnv1a(payload_);
  conns_.resize(conns);
}

LoadClient::~LoadClient() = default;

std::size_t LoadClient::connect_all(int retry_passes) {
  for (int pass = 0; pass <= retry_passes; ++pass) {
    std::size_t attempted = 0;
    std::size_t settled = 0;  // established or failed this pass
    std::vector<std::size_t> wave;  // indices with a connect in flight
    std::size_t scan = 0;
    const auto want_connect = [this](std::size_t i) {
      return !conns_[i].connected && !conns_[i].fd.valid();
    };
    std::size_t total = 0;
    for (std::size_t i = 0; i < conns_.size(); ++i) {
      conns_[i].dead = false;  // a retry pass revives failed slots
      if (want_connect(i)) ++total;
    }
    if (total == 0) break;
    while (settled < total) {
      while (attempted < total && attempted - settled < kConnectWave &&
             scan < conns_.size()) {
        if (!want_connect(scan)) {
          ++scan;
          continue;
        }
        Conn& c = conns_[scan];
        c.fd = connect_tcp_loopback(port_);
        ++attempted;
        if (!c.fd.valid()) {
          c.dead = true;
          ++settled;
          ++scan;
          continue;
        }
        set_nodelay(c.fd.get());
        // EPOLLOUT delivers connect completion; switch to read interest
        // once established.
        epoll_event ev{};
        ev.events = EPOLLET | EPOLLOUT;
        ev.data.u64 = scan;
        ::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, c.fd.get(), &ev);
        ++scan;
      }
      epoll_event events[512];
      const int n = ::epoll_wait(epoll_.get(), events, 512, 1000);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // stalled: let the next pass retry
      for (int i = 0; i < n; ++i) {
        Conn& c = conns_[events[i].data.u64];
        if (c.dead || c.connected || !c.fd.valid()) continue;
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(c.fd.get(), SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0 || (events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
          ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, c.fd.get(), nullptr);
          c.fd.reset();
          c.dead = true;  // retried next pass
        } else {
          c.connected = true;
          mod_interest(events[i].data.u64, false);
          ++established_;
        }
        ++settled;
      }
    }
    if (established_ == conns_.size()) break;
  }
  // Slots that never connected stay dead for the run.
  for (Conn& c : conns_) {
    if (!c.connected) c.dead = true;
  }
  return established_;
}

RoundResult LoadClient::run_round(double rate_hz, double duration_s,
                                  bool poisson, double drain_timeout_s) {
  RoundResult r;
  r.offered_hz = rate_hz;
  const auto total =
      static_cast<std::uint64_t>(std::max(1.0, rate_hz * duration_s));
  // The whole schedule is fixed before the first send (open loop).
  std::vector<common::TimePoint> sched(total);
  const common::TimePoint start = common::now();
  double at_ns = 0.0;
  const double mean_gap_ns = 1e9 / rate_hz;
  for (std::uint64_t i = 0; i < total; ++i) {
    at_ns += poisson ? rng_.next_exponential(mean_gap_ns) : mean_gap_ns;
    sched[i] = start + common::Nanos{static_cast<std::int64_t>(at_ns)};
  }
  send_time_ = std::move(sched);
  hist_.reset();
  ok_ = shed_ = errors_ = received_ = 0;

  std::uint64_t next = 0;  // next request id to send
  std::size_t rr = 0;      // round-robin connection cursor
  const common::TimePoint deadline =
      send_time_.back() +
      common::Nanos{static_cast<std::int64_t>(drain_timeout_s * 1e9)};
  epoll_event events[512];
  while (received_ < total) {
    const common::TimePoint now_tp = common::now();
    if (now_tp > deadline) break;
    while (next < total && send_time_[next] <= now_tp) {
      rr = send_on_next_alive(rr, next);
      ++next;
    }
    int timeout_ms = 50;
    if (next < total) {
      const auto gap_ns = common::elapsed_ns(now_tp, send_time_[next]);
      timeout_ms =
          gap_ns <= 0 ? 0 : static_cast<int>(gap_ns / 1'000'000 + 1);
    }
    const int n = ::epoll_wait(epoll_.get(), events, 512, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const std::size_t idx = events[i].data.u64;
      Conn& c = conns_[idx];
      if (c.dead) continue;
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        fail_conn(c);
        continue;
      }
      if ((events[i].events & (EPOLLIN | EPOLLRDHUP)) != 0) read_ready(c);
      if ((events[i].events & EPOLLOUT) != 0) flush(idx, c);
    }
    if (all_dead()) break;
  }
  r.sent = next;
  r.ok = ok_;
  r.shed = shed_;
  r.errors = errors_;
  r.drained = received_ >= total;
  r.wall_seconds = common::to_sec(common::now() - start);
  r.latency = hist_.snapshot();
  return r;
}

void LoadClient::fail_conn(Conn& c) {
  if (c.dead) return;
  c.dead = true;
  ++errors_;
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, c.fd.get(), nullptr);
  c.fd.reset();
}

bool LoadClient::all_dead() const {
  for (const Conn& c : conns_) {
    if (!c.dead) return false;
  }
  return true;
}

void LoadClient::mod_interest(std::size_t idx, bool want_write) {
  Conn& c = conns_[idx];
  if (c.dead) return;
  c.want_write = want_write;
  epoll_event ev{};
  ev.events = EPOLLET | EPOLLRDHUP | EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = idx;
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, c.fd.get(), &ev);
}

// Send request `id` on the next alive connection at or after cursor `rr`;
// returns the advanced cursor.
std::size_t LoadClient::send_on_next_alive(std::size_t rr, std::uint64_t id) {
  for (std::size_t probe = 0; probe < conns_.size(); ++probe) {
    const std::size_t idx = (rr + probe) % conns_.size();
    Conn& c = conns_[idx];
    if (c.dead || !c.connected) continue;
    encode_http_request(c.out, id, payload_);
    flush(idx, c);
    return (idx + 1) % conns_.size();
  }
  ++errors_;  // nowhere to send: every connection is gone
  ++received_;
  return rr;
}

void LoadClient::flush(std::size_t idx, Conn& c) {
  if (c.dead) return;
  while (c.out_off < c.out.size()) {
    const ssize_t n = ::send(c.fd.get(), c.out.data() + c.out_off,
                             c.out.size() - c.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!c.want_write) mod_interest(idx, true);
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    fail_conn(c);
    return;
  }
  c.out.clear();
  c.out_off = 0;
  if (c.want_write) mod_interest(idx, false);
}

void LoadClient::read_ready(Conn& c) {
  for (;;) {
    const std::size_t old = c.in.size();
    c.in.resize(old + kReadChunk);
    const ssize_t n = ::read(c.fd.get(), c.in.data() + old, kReadChunk);
    if (n > 0) {
      c.in.resize(old + static_cast<std::size_t>(n));
      continue;
    }
    c.in.resize(old);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    fail_conn(c);  // EOF mid-load or hard error
    return;
  }
  std::size_t off = 0;
  for (;;) {
    HttpResponse resp;
    std::size_t consumed = 0;
    const ParseStatus st = parse_http_response(
        std::span<const std::uint8_t>(c.in).subspan(off), &consumed, &resp);
    if (st == ParseStatus::kNeedMore) break;
    if (st == ParseStatus::kError) {
      fail_conn(c);
      return;
    }
    off += consumed;
    on_response(resp.status, resp.id, resp.checksum, resp.body.size());
  }
  if (off > 0) {
    c.in.erase(c.in.begin(), c.in.begin() + static_cast<std::ptrdiff_t>(off));
  }
}

void LoadClient::on_response(int status, std::uint64_t id,
                             std::uint64_t checksum, std::size_t body_bytes) {
  ++received_;
  if (id < send_time_.size()) {
    hist_.record(static_cast<std::uint64_t>(std::max<std::int64_t>(
        1, common::elapsed_ns(send_time_[id], common::now()))));
  }
  if (status == kStatusShed) {
    ++shed_;
  } else if (status == kStatusOk) {
    // Echo responses carry the payload and its checksum; handler-mode
    // responses carry an encrypted-payload checksum we cannot recompute
    // here, so only the echo shape is verified.
    if (body_bytes != 0 && checksum != expected_sum_) {
      ++errors_;
    } else {
      ++ok_;
    }
  } else {
    ++errors_;
  }
}

}  // namespace evmp::net

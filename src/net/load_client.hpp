#pragma once
// Open-loop HTTP load client for the net::Server front end.
//
// Methodology: arrivals are scheduled up front at the offered rate
// (Poisson by default) and never wait for the system — an overloaded
// server shows up as queueing delay and shed responses, not as a reduced
// offered rate. Latency is measured from each request's *scheduled* send
// time to its response parse, so sender-side stalls cannot hide server
// queueing (coordinated-omission-safe). Results land in the HDR-style
// common::LatencyHistogram and are reported as mergeable snapshots.
//
// One client thread drives all connections from its own epoll loop; the
// library is shared by tools/evmp_loadgen and `bench_fig9 --real-net`.

#include <cstdint>
#include <vector>

#include "common/clock.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "net/socket.hpp"

namespace evmp::net {

/// Outcome of one offered-load round.
struct RoundResult {
  double offered_hz = 0.0;
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;    ///< 503 responses
  std::uint64_t errors = 0;  ///< checksum/protocol/socket failures
  double wall_seconds = 0.0;
  common::HistogramSnapshot latency;
  bool drained = false;  ///< every response arrived before the timeout
};

/// All client-side state for one process: the epoll set and the
/// connection table, reused across sweep rounds.
class LoadClient {
 public:
  /// `conns` sockets against loopback `port`, each request carrying a
  /// `payload`-byte body (seeded deterministically from `seed`).
  LoadClient(std::uint16_t port, std::size_t conns, std::size_t payload,
             std::uint64_t seed);
  ~LoadClient();
  LoadClient(const LoadClient&) = delete;
  LoadClient& operator=(const LoadClient&) = delete;

  /// Establish every connection, in waves sized to stay under the listen
  /// backlog, with retry passes for attempts the kernel dropped under the
  /// burst. Returns the number established.
  std::size_t connect_all(int retry_passes = 3);

  /// One open-loop round at `rate_hz` for `duration_s` seconds, then up
  /// to `drain_timeout_s` more waiting for stragglers.
  RoundResult run_round(double rate_hz, double duration_s, bool poisson,
                        double drain_timeout_s);

  [[nodiscard]] std::size_t established() const noexcept {
    return established_;
  }

 private:
  struct Conn {
    Fd fd;
    std::vector<std::uint8_t> in;
    std::vector<std::uint8_t> out;
    std::size_t out_off = 0;
    bool connected = false;
    bool want_write = false;
    bool dead = false;
  };

  void fail_conn(Conn& c);
  bool all_dead() const;
  void mod_interest(std::size_t idx, bool want_write);
  std::size_t send_on_next_alive(std::size_t rr, std::uint64_t id);
  void flush(std::size_t idx, Conn& c);
  void read_ready(Conn& c);
  void on_response(int status, std::uint64_t id, std::uint64_t checksum,
                   std::size_t body_bytes);

  Fd epoll_;
  std::uint16_t port_;
  common::Xoshiro256 rng_;
  std::vector<std::uint8_t> payload_;
  std::uint64_t expected_sum_ = 0;
  std::vector<Conn> conns_;
  std::size_t established_ = 0;

  // Per-round state.
  std::vector<common::TimePoint> send_time_;
  common::LatencyHistogram hist_;
  std::uint64_t received_ = 0;
  std::uint64_t ok_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t errors_ = 0;
};

}  // namespace evmp::net

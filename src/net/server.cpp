#include "net/server.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <system_error>
#include <utility>

#include "common/logging.hpp"
#include "common/tracing.hpp"
#include "core/async_mode.hpp"
#include "net/http.hpp"

namespace evmp::net {

namespace {
constexpr std::size_t kReadChunk = 16 * 1024;
}  // namespace

// Per-connection state. Lives in Server::conns_ and is touched only on the
// reactor thread; worker handlers reach it exclusively through
// Server::complete() posted back to the reactor (keyed by cid, never by
// pointer, so a connection that died in the meantime is simply a drop).
struct Connection : Reactor::FdHandler {
  Connection(Server& server, std::uint64_t conn_id, Fd socket)
      : srv(server),
        cid(conn_id),
        fd(std::move(socket)),
        last_activity(common::now()) {}

  void on_readable() override { read_ready(); }
  void on_writable() override { flush(); }

  // --- read side --------------------------------------------------------
  void read_ready() {
    if (closed) return;
    for (;;) {
      const std::size_t old = in_buf.size();
      in_buf.resize(old + kReadChunk);
      const ssize_t n = ::read(fd.get(), in_buf.data() + old, kReadChunk);
      if (n > 0) {
        in_buf.resize(old + static_cast<std::size_t>(n));
        srv.stats_.bytes_received.fetch_add(static_cast<std::uint64_t>(n),
                                            std::memory_order_relaxed);
        last_activity = common::now();
        continue;  // edge-triggered: drain until EAGAIN or EOF
      }
      in_buf.resize(old);
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      // EOF or hard error: stop reading; finish writing what we owe, then
      // close. (A peer that shutdown(SHUT_WR) still wants its responses.)
      peer_eof = true;
      break;
    }
    parse_requests();
    if (done_reading() && !closed && out_buf.size() == out_off &&
        inflight == 0) {
      close_now();
    }
  }

  void parse_requests() {
    std::size_t off = 0;
    while (!closed && !want_close) {
      HttpRequest req;
      std::size_t consumed = 0;
      const ParseStatus st = parse_http_request(
          std::span<const std::uint8_t>(in_buf).subspan(off), &consumed,
          &req);
      if (st == ParseStatus::kNeedMore) break;
      if (st == ParseStatus::kError) {
        srv.stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        close_now();
        break;
      }
      srv.stats_.requests_received.fetch_add(1, std::memory_order_relaxed);
      // Copy the body out before the buffer is compacted below.
      std::vector<std::uint8_t> payload(req.body.begin(), req.body.end());
      const bool keep_alive = req.keep_alive;
      off += consumed;
      srv.on_request(*this, req.id, keep_alive, std::move(payload));
    }
    if (off > 0 && !closed) {
      in_buf.erase(in_buf.begin(),
                   in_buf.begin() + static_cast<std::ptrdiff_t>(off));
    }
  }

  // --- write side -------------------------------------------------------
  void queue_response(std::span<const std::uint8_t> wire) {
    if (closed) return;
    out_buf.insert(out_buf.end(), wire.begin(), wire.end());
    flush();
  }

  void flush() {
    if (closed) return;
    while (out_off < out_buf.size()) {
      const ssize_t n = ::send(fd.get(), out_buf.data() + out_off,
                               out_buf.size() - out_off, MSG_NOSIGNAL);
      if (n > 0) {
        out_off += static_cast<std::size_t>(n);
        srv.stats_.bytes_sent.fetch_add(static_cast<std::uint64_t>(n),
                                        std::memory_order_relaxed);
        last_activity = common::now();
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        arm_write(true);
        return;
      }
      if (n < 0 && errno == EINTR) continue;
      close_now();  // peer reset mid-write
      return;
    }
    // Fully flushed: compact and disarm EPOLLOUT.
    out_buf.clear();
    out_off = 0;
    arm_write(false);
    if (done_reading() && inflight == 0) close_now();
  }

  void arm_write(bool on) {
    if (on == want_write) return;
    want_write = on;
    srv.reactor_.mod_fd(fd.get(), true, on, this);
  }

  /// No further requests will be parsed: the peer closed its half or the
  /// last request asked for Connection: close.
  [[nodiscard]] bool done_reading() const noexcept {
    return peer_eof || want_close;
  }

  // Close the socket now; free the Connection object via a posted task so
  // the current epoll batch cannot touch a destroyed handler.
  void close_now() {
    if (closed) return;
    closed = true;
    srv.reactor_.del_fd(fd.get());
    fd.reset();
    srv.stats_.connections_closed.fetch_add(1, std::memory_order_relaxed);
    srv.defer_destroy(cid);
  }

  Server& srv;
  const std::uint64_t cid;
  Fd fd;
  std::vector<std::uint8_t> in_buf;
  std::vector<std::uint8_t> out_buf;
  std::size_t out_off = 0;
  common::TimePoint last_activity;
  std::uint32_t inflight = 0;  ///< this connection's admitted requests
  bool want_write = false;
  bool want_close = false;  ///< a request carried Connection: close
  bool peer_eof = false;
  bool closed = false;
};

// The listening socket's handler: accept until EAGAIN (edge-triggered).
class Server::Acceptor : public Reactor::FdHandler {
 public:
  explicit Acceptor(Server& server) : srv_(server) {}

  void on_readable() override {
    for (;;) {
      if (srv_.cfg_.max_connections != 0 &&
          srv_.conns_.size() >= srv_.cfg_.max_connections) {
        srv_.close_accept_gate();
        return;
      }
      const int fd = ::accept4(srv_.listen_.get(), nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        // EMFILE/ECONNABORTED/...: drop this one, keep accepting later.
        EVMP_LOG_WARN << "net server '" << srv_.cfg_.name
                      << "' accept failed: errno " << errno;
        return;
      }
      set_nodelay(fd);
      const std::uint64_t cid = srv_.next_cid_++;
      auto conn = std::make_unique<Connection>(srv_, cid, Fd(fd));
      Connection* raw = conn.get();
      srv_.conns_.emplace(cid, std::move(conn));
      srv_.stats_.connections_accepted.fetch_add(1,
                                                 std::memory_order_relaxed);
      if (!srv_.reactor_.add_fd(raw->fd.get(), true, false, raw)) {
        raw->close_now();
        continue;
      }
      srv_.arm_idle_timer(*raw);
    }
  }

 private:
  Server& srv_;
};

Server::Server(Runtime& rt, Config cfg)
    : rt_(rt),
      cfg_(std::move(cfg)),
      reactor_(cfg_.name + ".reactor"),
      drain_tag_(cfg_.name + ".drain") {}

Server::~Server() { stop(); }

void Server::start() {
  if (started_) return;
  listen_ = listen_tcp_loopback(cfg_.port, &port_);
  if (!listen_.valid()) {
    throw std::system_error(errno, std::generic_category(),
                            "net::Server: cannot listen on loopback");
  }
  target_exec_ = &rt_.resolve(cfg_.target);
  acceptor_ = std::make_unique<Acceptor>(*this);
  reactor_.add_fd(listen_.get(), true, false, acceptor_.get());
  accepting_ = true;
  // The reactor is itself a virtual target: handlers may dispatch their
  // continuations back with `target virtual(<name>)` instead of raw post().
  rt_.register_executor(cfg_.name, reactor_);
  reactor_.start();
  started_ = true;
}

void Server::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  // 1. Stop accepting (on the reactor thread, so no accept race).
  reactor_.post(exec::Task([this] {
    if (listen_.valid()) {
      if (accepting_) reactor_.del_fd(listen_.get());
      accepting_ = false;
      listen_.reset();
    }
  }));
  // 2. Join in-flight handlers the directive way: every admitted request
  //    was dispatched name_as(drain_tag_), so wait(tag) is the drain
  //    barrier. Their completions may still be in flight to the reactor.
  rt_.wait_tag(drain_tag_);
  // 3. Close every connection (flushing what the completions queued), on
  //    the reactor thread, behind any already-posted complete() tasks.
  reactor_.post(exec::Task([this] {
    for (auto& [cid, conn] : conns_) {
      if (conn && !conn->closed) conn->flush();
    }
    // flush() may have erased entries via posted destroys; close the rest.
    for (auto& [cid, conn] : conns_) {
      if (conn && !conn->closed) conn->close_now();
    }
  }));
  // 4. Drain the posted work and join the loop.
  reactor_.stop();
  conns_.clear();
  rt_.unregister(cfg_.name);
  publish_counters();
}

// Reactor thread. Admission control happens here — *before* the request
// occupies a worker queue slot — so overload is shed at the cheapest point.
void Server::on_request(Connection& conn, std::uint64_t id, bool keep_alive,
                        std::vector<std::uint8_t> payload) {
  const common::TimePoint arrived = common::now();
  if (!keep_alive) conn.want_close = true;
  const bool target_deep = cfg_.max_target_depth != 0 &&
                           target_exec_->pending() >= cfg_.max_target_depth;
  if (shedding_.load(std::memory_order_relaxed) || target_deep) {
    // Shed: answer 503 immediately from the reactor thread. The
    // connection stays open; the client decides whether to back off.
    stats_.requests_shed.fetch_add(1, std::memory_order_relaxed);
    std::vector<std::uint8_t> wire;
    encode_http_response(wire, kStatusShed, id, 0, {});
    conn.queue_response(wire);
    return;
  }
  stats_.requests_admitted.fetch_add(1, std::memory_order_relaxed);
  conn.inflight++;
  update_admission_on_admit();
  const std::uint64_t cid = conn.cid;
  // Algorithm 1 dispatch, tagged so stop() can join via wait(drain_tag_).
  rt_.invoke_target_block(
      cfg_.target,
      [this, cid, id, payload = std::move(payload), arrived]() mutable {
        handle_on_worker(cid, id, std::move(payload), arrived);
      },
      Async::kNameAs, drain_tag_);
}

// Worker target. Run the application handler and encode the response off
// the reactor thread; only the buffered-write bookkeeping goes back.
void Server::handle_on_worker(std::uint64_t cid, std::uint64_t id,
                              std::vector<std::uint8_t> payload,
                              common::TimePoint arrived) {
  std::vector<std::uint8_t> wire;
  if (cfg_.mode == Mode::kEcho) {
    const std::uint64_t sum = fnv1a(payload);
    encode_http_response(wire, kStatusOk, id, sum, payload);
  } else {
    http::Request req;
    req.id = id;
    req.user = cid;
    req.payload = std::move(payload);
    req.arrived = arrived;
    const http::Response resp = cfg_.handler(req);
    encode_http_response(wire, resp.ok ? kStatusOk : 500, id, resp.checksum,
                         {});
  }
  reactor_.post(exec::Task([this, cid, wire = std::move(wire)]() mutable {
    complete(cid, std::move(wire));
  }));
}

// Reactor thread: a handler's completion. The connection may have died
// while the request was in flight — that is a counted drop, not an error.
void Server::complete(std::uint64_t cid, std::vector<std::uint8_t> wire) {
  update_admission_on_complete();
  const auto it = conns_.find(cid);
  if (it == conns_.end() || !it->second || it->second->closed) {
    stats_.responses_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Connection& conn = *it->second;
  conn.inflight--;
  stats_.responses_sent.fetch_add(1, std::memory_order_relaxed);
  conn.queue_response(wire);
  if (conn.done_reading() && !conn.closed && conn.inflight == 0 &&
      conn.out_buf.size() == conn.out_off) {
    conn.close_now();
  }
}

void Server::defer_destroy(std::uint64_t cid) {
  // try_post: during stop()'s final drain the queue is already closed; the
  // drop is fine because stop() clears conns_ after the reactor joins.
  (void)reactor_.try_post(exec::Task([this, cid] {
    conns_.erase(cid);
    maybe_open_accept_gate();
  }));
}

// --- admission state machine (reactor thread) ----------------------------

void Server::update_admission_on_admit() {
  const std::uint64_t now_inflight =
      inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (cfg_.high_watermark == 0) return;
  if (!shedding_.load(std::memory_order_relaxed) &&
      now_inflight >= cfg_.high_watermark) {
    shedding_.store(true, std::memory_order_relaxed);
    stats_.shed_entries.fetch_add(1, std::memory_order_relaxed);
    close_accept_gate();
  }
}

void Server::update_admission_on_complete() {
  const std::uint64_t now_inflight =
      inflight_.fetch_sub(1, std::memory_order_relaxed) - 1;
  if (shedding_.load(std::memory_order_relaxed) &&
      now_inflight <= cfg_.low_watermark) {
    shedding_.store(false, std::memory_order_relaxed);
    maybe_open_accept_gate();
  }
}

void Server::close_accept_gate() {
  if (!accepting_ || stopped_) return;
  reactor_.del_fd(listen_.get());
  accepting_ = false;
  accept_gated_ = true;
  stats_.accept_gate_closes.fetch_add(1, std::memory_order_relaxed);
}

void Server::maybe_open_accept_gate() {
  if (!accept_gated_ || stopped_ || !listen_.valid()) return;
  if (shedding_.load(std::memory_order_relaxed)) return;
  if (cfg_.max_connections != 0 &&
      conns_.size() >= cfg_.max_connections) {
    return;
  }
  accept_gated_ = false;
  if (reactor_.add_fd(listen_.get(), true, false, acceptor_.get())) {
    accepting_ = true;
    // Edge-triggered: connections that queued while gated predate the
    // re-add, so harvest them explicitly rather than waiting for an edge.
    acceptor_->on_readable();
  }
}

void Server::arm_idle_timer(Connection& conn) {
  if (cfg_.idle_timeout <= common::Nanos{0}) return;
  const std::uint64_t cid = conn.cid;
  // Check-and-re-arm idiom: the timer looks up the connection by id and
  // compares last_activity, so active connections never cancel anything
  // and a dead cid simply lets the entry lapse.
  reactor_.add_timer(cfg_.idle_timeout, exec::Task([this, cid] {
    const auto it = conns_.find(cid);
    if (it == conns_.end() || !it->second || it->second->closed) return;
    Connection& c = *it->second;
    const common::Nanos idle = common::now() - c.last_activity;
    if (idle >= cfg_.idle_timeout && c.inflight == 0) {
      stats_.idle_closed.fetch_add(1, std::memory_order_relaxed);
      c.close_now();
      return;
    }
    arm_idle_timer(c);
  }));
}

ServerStats Server::stats() const noexcept {
  ServerStats s;
  s.connections_accepted =
      stats_.connections_accepted.load(std::memory_order_relaxed);
  s.connections_closed =
      stats_.connections_closed.load(std::memory_order_relaxed);
  s.requests_received =
      stats_.requests_received.load(std::memory_order_relaxed);
  s.requests_admitted =
      stats_.requests_admitted.load(std::memory_order_relaxed);
  s.requests_shed = stats_.requests_shed.load(std::memory_order_relaxed);
  s.responses_sent = stats_.responses_sent.load(std::memory_order_relaxed);
  s.responses_dropped =
      stats_.responses_dropped.load(std::memory_order_relaxed);
  s.protocol_errors =
      stats_.protocol_errors.load(std::memory_order_relaxed);
  s.idle_closed = stats_.idle_closed.load(std::memory_order_relaxed);
  s.shed_entries = stats_.shed_entries.load(std::memory_order_relaxed);
  s.accept_gate_closes =
      stats_.accept_gate_closes.load(std::memory_order_relaxed);
  s.bytes_received = stats_.bytes_received.load(std::memory_order_relaxed);
  s.bytes_sent = stats_.bytes_sent.load(std::memory_order_relaxed);
  return s;
}

void Server::publish_counters() const {
  auto& tracer = common::Tracer::instance();
  const ServerStats s = stats();
  const std::string p = cfg_.name + ".";
  tracer.set_counter(p + "connections_accepted", s.connections_accepted);
  tracer.set_counter(p + "connections_closed", s.connections_closed);
  tracer.set_counter(p + "requests_received", s.requests_received);
  tracer.set_counter(p + "requests_admitted", s.requests_admitted);
  tracer.set_counter(p + "requests_shed", s.requests_shed);
  tracer.set_counter(p + "responses_sent", s.responses_sent);
  tracer.set_counter(p + "responses_dropped", s.responses_dropped);
  tracer.set_counter(p + "protocol_errors", s.protocol_errors);
  tracer.set_counter(p + "idle_closed", s.idle_closed);
  tracer.set_counter(p + "shed_entries", s.shed_entries);
  tracer.set_counter(p + "accept_gate_closes", s.accept_gate_closes);
  tracer.set_counter(p + "bytes_received", s.bytes_received);
  tracer.set_counter(p + "bytes_sent", s.bytes_sent);
  const ReactorStats r = reactor_.stats();
  tracer.set_counter(p + "reactor.epoll_waits", r.epoll_waits);
  tracer.set_counter(p + "reactor.fd_events", r.fd_events);
  tracer.set_counter(p + "reactor.wakeups", r.wakeups);
  tracer.set_counter(p + "reactor.tasks_run", r.tasks_run);
  tracer.set_counter(p + "reactor.timers_scheduled", r.timers_scheduled);
  tracer.set_counter(p + "reactor.timers_fired", r.timers_fired);
  tracer.set_counter(p + "reactor.timers_cancelled", r.timers_cancelled);
}

}  // namespace evmp::net

#pragma once
// Minimal HTTP/1.1 wire layer for the loopback front end: an incremental
// request/response parser and the matching encoders.
//
// Scope is deliberately small — exactly what the encryption service and
// its load generator exchange: keep-alive `POST /encrypt` requests whose
// body is the payload to encrypt, with `Content-Length` framing (no
// chunked encoding, no multipart). Two extension headers carry the
// request identity and the result so responses can be matched and checked
// without parsing the body:
//
//   X-Request-Id: <decimal>     echoed verbatim in the response
//   X-Checksum:   <16 hex>      FNV-1a of the encrypted payload
//
// A shed response is a plain `503 Service Unavailable` with
// `Retry-After: 0`; the connection stays usable (see net::Server).
//
// Parsers are incremental: feed any prefix of the stream, get kNeedMore
// until one complete message is available, then `*consumed` tells the
// caller how many bytes to discard. Views in the output structs point
// into the input span and are only valid until the caller mutates it.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace evmp::net {

/// Result of one incremental parse attempt.
enum class ParseStatus : std::uint8_t {
  kOk,        ///< one complete message parsed; *consumed set
  kNeedMore,  ///< the buffer holds only a prefix; read more bytes
  kError,     ///< malformed or oversized message; close the connection
};

/// Hard limits: a header block or body beyond these is a protocol error,
/// not a request for more memory.
constexpr std::size_t kMaxHeaderBytes = 8 * 1024;
constexpr std::size_t kMaxBodyBytes = 64u << 20;

constexpr int kStatusOk = 200;
constexpr int kStatusShed = 503;

/// One parsed request. `body` views into the parse input.
struct HttpRequest {
  std::string_view method;
  std::string_view target;
  std::uint64_t id = 0;  ///< X-Request-Id, 0 when absent
  bool keep_alive = true;
  std::span<const std::uint8_t> body;
};

/// One parsed response. `body` views into the parse input.
struct HttpResponse {
  int status = 0;
  std::uint64_t id = 0;        ///< X-Request-Id, 0 when absent
  std::uint64_t checksum = 0;  ///< X-Checksum, 0 when absent
  std::span<const std::uint8_t> body;
};

ParseStatus parse_http_request(std::span<const std::uint8_t> in,
                               std::size_t* consumed, HttpRequest* out);

ParseStatus parse_http_response(std::span<const std::uint8_t> in,
                                std::size_t* consumed, HttpResponse* out);

/// Append a keep-alive `POST /encrypt` request carrying `payload`.
void encode_http_request(std::vector<std::uint8_t>& out, std::uint64_t id,
                         std::span<const std::uint8_t> payload);

/// Append a response. 200s carry `checksum` and `body`; other statuses
/// (e.g. 503) get `Retry-After: 0` and an empty body.
void encode_http_response(std::vector<std::uint8_t>& out, int status,
                          std::uint64_t id, std::uint64_t checksum,
                          std::span<const std::uint8_t> body);

/// FNV-1a over a byte span — the checksum both ends agree on.
[[nodiscard]] std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) noexcept;

}  // namespace evmp::net

#include "net/reactor.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#include "common/logging.hpp"

namespace evmp::net {

namespace {
/// Wheel tick granularity: deadlines hash to slots of this width. One
/// millisecond matches epoll_wait's timeout resolution — finer would not
/// make the loop wake any earlier.
constexpr common::Nanos kTick = std::chrono::milliseconds{1};
}  // namespace

Reactor::Reactor(std::string reactor_name)
    : Executor(std::move(reactor_name)),
      epoll_(::epoll_create1(EPOLL_CLOEXEC)),
      wake_fd_(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)) {
  // The wake eventfd is the one level-triggered member of the set: a
  // pending wake must keep epoll_wait from blocking until it is consumed,
  // with no edge-rearm subtleties. data.ptr == nullptr marks it.
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.ptr = nullptr;
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev);
}

Reactor::~Reactor() { stop(); }

void Reactor::start() {
  if (running_.load(std::memory_order_acquire)) return;
  thread_ = std::jthread([this] { run(); });
  running_.store(true, std::memory_order_release);
}

void Reactor::stop() {
  if (stop_requested_.exchange(true)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // Close first: new posts are refused (warned) from here on, while
  // already-queued tasks stay poppable for the loop's final drain.
  tasks_.close();
  wake();
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

void Reactor::post(exec::Task task) {
  if (!tasks_.push(std::move(task))) {
    EVMP_LOG_WARN << "task posted to stopped reactor '" << name()
                  << "' was dropped";
    return;
  }
  wake();
}

void Reactor::post_batch(std::span<exec::Task> tasks) {
  if (tasks.empty()) return;
  if (tasks_.push_batch(tasks) == 0) {
    EVMP_LOG_WARN << "batch of " << tasks.size() << " tasks posted to "
                  << "stopped reactor '" << name() << "' was dropped";
    return;
  }
  wake();
}

bool Reactor::try_post(exec::Task task) {
  if (!tasks_.push(std::move(task))) return false;
  wake();
  return true;
}

bool Reactor::try_run_one() {
  if (!owns_current_thread()) return false;
  auto task = tasks_.try_pop();
  if (!task) return false;
  run_task(*task);
  tasks_run_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Reactor::add_fd(int fd, bool want_read, bool want_write,
                     FdHandler* handler) {
  epoll_event ev{};
  ev.events = EPOLLET | EPOLLRDHUP | (want_read ? EPOLLIN : 0u) |
              (want_write ? EPOLLOUT : 0u);
  ev.data.ptr = handler;
  return ::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, fd, &ev) == 0;
}

bool Reactor::mod_fd(int fd, bool want_read, bool want_write,
                     FdHandler* handler) {
  epoll_event ev{};
  ev.events = EPOLLET | EPOLLRDHUP | (want_read ? EPOLLIN : 0u) |
              (want_write ? EPOLLOUT : 0u);
  ev.data.ptr = handler;
  return ::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, fd, &ev) == 0;
}

void Reactor::del_fd(int fd) {
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, fd, nullptr);
}

// --- timer wheel ----------------------------------------------------------

TimerId Reactor::add_timer(common::Nanos delay, exec::Task cb) {
  const TimerId id = next_timer_id_.fetch_add(1, std::memory_order_relaxed);
  const common::TimePoint deadline =
      common::now() + std::max(common::Nanos{0}, delay);
  if (owns_current_thread()) {
    insert_timer(id, deadline, std::move(cb));
  } else {
    post(exec::Task([this, id, deadline, cb = std::move(cb)]() mutable {
      insert_timer(id, deadline, std::move(cb));
    }));
  }
  return id;
}

void Reactor::cancel_timer(TimerId id) {
  if (owns_current_thread()) {
    do_cancel(id);
  } else {
    post(exec::Task([this, id] { do_cancel(id); }));
  }
}

std::size_t Reactor::slot_of(common::TimePoint deadline) const noexcept {
  const auto ticks =
      static_cast<std::uint64_t>(deadline.time_since_epoch() / kTick);
  return static_cast<std::size_t>(ticks) & (kWheelSlots - 1);
}

void Reactor::insert_timer(TimerId id, common::TimePoint deadline,
                           exec::Task cb) {
  WheelSlot& slot = wheel_[slot_of(deadline)];
  slot.entries.push_back(TimerEntry{id, deadline, std::move(cb)});
  slot.min_deadline = std::min(slot.min_deadline, deadline);
  live_.insert(id);
  ++timer_entries_;
  timers_scheduled_.fetch_add(1, std::memory_order_relaxed);
}

void Reactor::do_cancel(TimerId id) {
  // Lazy cancellation: the wheel entry stays where it is and is dropped
  // when its slot is swept. Both sets only ever hold ids whose entries
  // are still resident, so neither grows past the pending-timer count.
  if (live_.erase(id) != 0) cancelled_.insert(id);
}

void Reactor::fire_due_timers() {
  if (timer_entries_ == 0) return;
  const common::TimePoint now_tp = common::now();
  // Collect due callbacks before running any: a callback may re-arm
  // itself (add_timer mutates the wheel mid-sweep otherwise).
  std::vector<exec::Task> due;
  for (WheelSlot& slot : wheel_) {
    if (slot.entries.empty() || slot.min_deadline > now_tp) continue;
    common::TimePoint new_min = common::TimePoint::max();
    std::size_t keep = 0;
    for (TimerEntry& entry : slot.entries) {
      if (entry.deadline > now_tp) {
        new_min = std::min(new_min, entry.deadline);
        slot.entries[keep++] = std::move(entry);
        continue;
      }
      --timer_entries_;
      if (cancelled_.erase(entry.id) != 0) {
        timers_cancelled_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      live_.erase(entry.id);
      due.push_back(std::move(entry.task));
    }
    slot.entries.resize(keep);
    slot.min_deadline = new_min;
  }
  for (exec::Task& task : due) {
    run_task(task);
    timers_fired_.fetch_add(1, std::memory_order_relaxed);
  }
}

int Reactor::timer_wait_ms() const noexcept {
  if (timer_entries_ == 0) return -1;
  common::TimePoint next = common::TimePoint::max();
  for (const WheelSlot& slot : wheel_) {
    if (!slot.entries.empty()) next = std::min(next, slot.min_deadline);
  }
  if (next == common::TimePoint::max()) return -1;
  const auto gap = next - common::now();
  if (gap <= common::Nanos{0}) return 0;
  const auto ms = (gap + common::Nanos{999'999}) / common::Nanos{1'000'000};
  return static_cast<int>(std::min<std::int64_t>(ms, 60'000));
}

ReactorStats Reactor::stats() const noexcept {
  ReactorStats s;
  s.epoll_waits = epoll_waits_.load(std::memory_order_relaxed);
  s.fd_events = fd_events_.load(std::memory_order_relaxed);
  s.wakeups = wakeups_.load(std::memory_order_relaxed);
  s.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  s.timers_scheduled = timers_scheduled_.load(std::memory_order_relaxed);
  s.timers_fired = timers_fired_.load(std::memory_order_relaxed);
  s.timers_cancelled = timers_cancelled_.load(std::memory_order_relaxed);
  return s;
}

void Reactor::wake() {
  // Skip the syscall while a previous wake is still unconsumed; the
  // seq_cst exchange pairs with the loop's flag clear (see run()) so a
  // push is never stranded behind a cleared flag.
  if (wake_pending_.exchange(true)) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_.get(), &one, sizeof(one));
}

void Reactor::drain_tasks() {
  while (auto task = tasks_.try_pop()) {
    run_task(*task);
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Reactor::run() {
  ThreadBinding bind(this);
  constexpr int kMaxEvents = 256;
  epoll_event events[kMaxEvents];
  for (;;) {
    drain_tasks();
    if (stop_requested_.load(std::memory_order_acquire)) break;
    fire_due_timers();
    const int n =
        ::epoll_wait(epoll_.get(), events, kMaxEvents, timer_wait_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      EVMP_LOG_WARN << "reactor '" << name() << "' epoll_wait failed: errno "
                    << errno;
      break;
    }
    epoll_waits_.fetch_add(1, std::memory_order_relaxed);
    for (int i = 0; i < n; ++i) {
      if (events[i].data.ptr == nullptr) {
        std::uint64_t value = 0;
        [[maybe_unused]] const ssize_t got =
            ::read(wake_fd_.get(), &value, sizeof(value));
        // Clear before the next drain_tasks(): a producer that saw the
        // flag still set pushed before this clear, so the drain sees it.
        wake_pending_.store(false);
        wakeups_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      fd_events_.fetch_add(1, std::memory_order_relaxed);
      auto* handler = static_cast<FdHandler*>(events[i].data.ptr);
      const std::uint32_t ev = events[i].events;
      if ((ev & (EPOLLERR | EPOLLHUP)) != 0) {
        handler->on_error();
        continue;
      }
      if ((ev & (EPOLLIN | EPOLLRDHUP)) != 0) handler->on_readable();
      if ((ev & EPOLLOUT) != 0) handler->on_writable();
    }
  }
  drain_tasks();
}

}  // namespace evmp::net

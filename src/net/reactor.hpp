#pragma once
// The epoll reactor: socket readiness in, virtual-target dispatches out.
//
// The paper's conclusion names "integrating non-blocking I/O and
// asynchronous I/O into this model" as future work; this is that front
// end. The reactor thread is an event-dispatch thread in exactly the
// paper's sense — a single thread draining a queue of events — except its
// events come from three sources instead of one:
//
//   * fd readiness, harvested edge-triggered from epoll_wait;
//   * posted tasks (the Executor interface), delivered through a sharded
//     queue and an eventfd wakeup, which is how completions flow *back*
//     onto the reactor from worker targets; and
//   * timers, kept in a hashed timer wheel (connection idle timeouts,
//     asyncio completion deadlines) and fired between epoll batches.
//
// Because Reactor is an exec::Executor, it registers with the Runtime as
// a named virtual target: a worker-side handler finishing a response
// simply posts its continuation here (or dispatches with
// `target virtual(<reactor>)`), keeping the continuation-in-place style
// of the directive model end to end. Everything that touches connection
// state runs on the reactor thread; cross-thread interaction happens only
// through post().

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/clock.hpp"
#include "common/sharded_queue.hpp"
#include "executor/executor.hpp"
#include "net/socket.hpp"

namespace evmp::net {

/// Counters published by the reactor (relaxed; observability only).
struct ReactorStats {
  std::uint64_t epoll_waits = 0;       ///< epoll_wait returns
  std::uint64_t fd_events = 0;         ///< readiness events delivered
  std::uint64_t wakeups = 0;           ///< eventfd wakeups consumed
  std::uint64_t tasks_run = 0;         ///< posted tasks executed
  std::uint64_t timers_scheduled = 0;  ///< add_timer() insertions
  std::uint64_t timers_fired = 0;      ///< timer callbacks executed
  std::uint64_t timers_cancelled = 0;  ///< entries dropped by cancel_timer
};

/// Handle to a pending timer (see Reactor::add_timer). 0 is never issued.
using TimerId = std::uint64_t;

/// Single-threaded edge-triggered epoll loop with a hashed timer wheel,
/// registrable as a virtual target. Not meant to be subclassed further —
/// connection logic lives in FdHandler implementations (see net::Server).
class Reactor final : public exec::Executor {
 public:
  /// Callbacks a registered descriptor receives, always on the reactor
  /// thread. A handler may close and deregister *its own* descriptor from
  /// inside a callback, but must not destroy other handlers there (their
  /// readiness may be in the same epoll batch); defer cross-handler
  /// teardown through post().
  class FdHandler {
   public:
    virtual ~FdHandler() = default;
    virtual void on_readable() = 0;
    virtual void on_writable() {}
    /// EPOLLERR/EPOLLHUP. Default: treat as readable so the owner observes
    /// the error/EOF from the next read().
    virtual void on_error() { on_readable(); }
  };

  explicit Reactor(std::string name = "reactor");
  ~Reactor() override;

  // --- lifecycle --------------------------------------------------------
  /// Spawn the reactor thread. add_fd() may be called before or after.
  void start();

  /// Ask the loop to exit, drain already-posted tasks, and join. Posted
  /// tasks arriving after stop() returns are dropped with a warning;
  /// pending timers are discarded unfired. Registered descriptors are not
  /// closed — their owners are. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  // --- Executor interface ----------------------------------------------
  /// Enqueue a task for the reactor thread and wake it. Thread-safe.
  void post(exec::Task task) override;
  void post_batch(std::span<exec::Task> tasks) override;

  /// As post(), but a task refused because the reactor already stopped is
  /// reported with `false` instead of a warning — for teardown paths where
  /// the caller has a fallback (e.g. Server::stop() clears connections
  /// itself after the join).
  bool try_post(exec::Task task) override;

  /// Reactor-thread only: run one queued task (lets `await` dispatched
  /// from the reactor thread keep pumping completions). Foreign threads
  /// get false.
  bool try_run_one() override;

  [[nodiscard]] std::size_t concurrency() const noexcept override {
    return 1;
  }
  [[nodiscard]] std::size_t pending() const override { return tasks_.size(); }

  // --- fd registration --------------------------------------------------
  // Registration is edge-triggered (EPOLLET): a callback must consume the
  // condition fully (read/write until EAGAIN) or it will not fire again.
  // `handler` must stay valid until del_fd() (or the fd is closed). Safe
  // from any thread (epoll_ctl is kernel-side serialised), though
  // handlers are only ever *invoked* on the reactor thread.
  bool add_fd(int fd, bool want_read, bool want_write, FdHandler* handler);
  bool mod_fd(int fd, bool want_read, bool want_write, FdHandler* handler);
  void del_fd(int fd);

  // --- timers ------------------------------------------------------------
  /// Schedule `cb` to run on the reactor thread once `delay` has elapsed.
  /// The wheel hashes deadlines into fixed slots, so insertion and expiry
  /// are O(1) amortised regardless of how many timers are pending; the
  /// epoll timeout tracks the earliest pending deadline, so an idle
  /// reactor sleeps until exactly the next timer. Thread-safe: foreign
  /// threads enqueue the insertion through post() (the returned id is
  /// valid immediately either way).
  TimerId add_timer(common::Nanos delay, exec::Task cb);

  /// Best-effort cancellation: a timer that has not fired yet will not
  /// run. Cancelling an already-fired (or unknown) id is a no-op.
  /// Thread-safe with the same posting rule as add_timer.
  void cancel_timer(TimerId id);

  [[nodiscard]] ReactorStats stats() const noexcept;

 private:
  static constexpr std::size_t kWheelSlots = 512;  // power of two

  struct TimerEntry {
    TimerId id = 0;
    common::TimePoint deadline{};
    exec::Task task;
  };

  struct WheelSlot {
    std::vector<TimerEntry> entries;
    common::TimePoint min_deadline = common::TimePoint::max();
  };

  void run();
  void drain_tasks();
  void wake();

  // Timer internals; reactor thread only.
  std::size_t slot_of(common::TimePoint deadline) const noexcept;
  void insert_timer(TimerId id, common::TimePoint deadline, exec::Task cb);
  void do_cancel(TimerId id);
  void fire_due_timers();
  /// Milliseconds until the earliest pending deadline (rounded up), 0 if
  /// one is already due, -1 when no timer is pending (block forever).
  int timer_wait_ms() const noexcept;

  Fd epoll_;
  Fd wake_fd_;  ///< eventfd; level-triggered member of the epoll set

  common::ShardedMpmcQueue<exec::Task> tasks_;
  std::atomic<bool> wake_pending_{false};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};

  // Hashed timer wheel; every member below is reactor-thread confined.
  std::vector<WheelSlot> wheel_{kWheelSlots};
  std::size_t timer_entries_ = 0;  ///< entries resident in the wheel
  std::unordered_set<TimerId> live_;       ///< pending and not cancelled
  std::unordered_set<TimerId> cancelled_;  ///< pending, to drop at expiry
  std::atomic<TimerId> next_timer_id_{1};

  std::atomic<std::uint64_t> epoll_waits_{0};
  std::atomic<std::uint64_t> fd_events_{0};
  std::atomic<std::uint64_t> wakeups_{0};
  std::atomic<std::uint64_t> tasks_run_{0};
  std::atomic<std::uint64_t> timers_scheduled_{0};
  std::atomic<std::uint64_t> timers_fired_{0};
  std::atomic<std::uint64_t> timers_cancelled_{0};

  std::jthread thread_;
};

}  // namespace evmp::net

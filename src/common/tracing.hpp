#pragma once
// Lightweight execution tracer.
//
// When enabled, the event loop and the executors record one span per
// dispatched handler/task; the buffer exports as Chrome trace-event JSON
// (open chrome://tracing or https://ui.perfetto.dev and load the file) —
// giving exactly the timeline view of the paper's Figure 1/2 diagrams for
// a real run. Disabled (the default) the hooks cost one relaxed atomic
// load per task.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.hpp"

namespace evmp::common {

/// One completed span.
struct TraceSpan {
  std::string name;      ///< e.g. "edt.dispatch", "worker.task"
  std::string category;  ///< e.g. "event", "executor"
  std::int64_t start_us = 0;  ///< relative to the tracer's epoch
  std::int64_t duration_us = 0;
  std::uint32_t thread_id = 0;  ///< small stable per-thread id
};

/// Process-wide span collector. Thread-safe; bounded (drops beyond cap).
class Tracer {
 public:
  /// The singleton instance used by the built-in hooks.
  static Tracer& instance();

  /// Turn collection on/off (off by default). Enabling resets the epoch.
  void enable(bool on);
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Record a completed span (no-op while disabled or at capacity).
  void record(std::string_view name, std::string_view category,
              TimePoint start, TimePoint end);

  /// Copy of everything collected so far.
  [[nodiscard]] std::vector<TraceSpan> snapshot() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t dropped() const;
  void clear();

  /// Write the buffer as Chrome trace-event JSON. Returns false on I/O
  /// failure.
  bool write_chrome_trace(const std::string& path) const;

  /// Small stable id for the calling thread (assigned on first use).
  static std::uint32_t current_thread_id();

  /// Collection capacity (spans); default 1<<20.
  void set_capacity(std::size_t cap);

  // --- named counters -----------------------------------------------------
  // Executors publish their run-queue statistics here (posts, batched
  // posts, steals, shard collisions, max depth ...) keyed by
  // "<executor>.<counter>". Unlike spans, counters are collected even while
  // span tracing is disabled: they are set at executor shutdown, not on the
  // hot path, and the figure benches print them after each sweep.
  void set_counter(std::string name, std::uint64_t value);
  void add_counter(std::string name, std::uint64_t delta);
  [[nodiscard]] std::map<std::string, std::uint64_t> counters() const;
  void clear_counters();

 private:
  Tracer() = default;

  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  std::size_t capacity_ = 1u << 20;
  std::size_t dropped_ = 0;
  TimePoint epoch_{};
  std::atomic<bool> enabled_{false};

  mutable std::mutex counters_mu_;
  std::map<std::string, std::uint64_t> counters_;
};

/// RAII helper: records [construction, destruction) as one span.
class ScopedSpan {
 public:
  ScopedSpan(std::string_view name, std::string_view category)
      : name_(name), category_(category), start_(now()) {}
  ~ScopedSpan() {
    Tracer::instance().record(name_, category_, start_, now());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  std::string_view name_;
  std::string_view category_;
  TimePoint start_;
};

}  // namespace evmp::common

#pragma once
// Thread-cached object pool: recycles long-lived nodes (completion states)
// instead of paying one heap allocation per directive dispatch.
//
// Layout: every thread keeps a small intrusive freelist (LIFO, so the
// hottest node is reused first); when the local list is empty it refills a
// batch from a spinlock-guarded global list, and when it overflows it
// flushes half back. Producers (directive-encountering threads) acquire,
// consumers (executor workers) release — the batched global exchange is
// what lets the two sides run on different threads while the steady state
// stays allocation-free: one spinlock acquisition amortised over
// kTransferBatch dispatches, zero mallocs once the population matches the
// in-flight high-water mark.
//
// Nodes are allocated in slabs and never freed: slabs stay registered on a
// global list (so everything remains reachable — leak-checker clean) and
// the pool's static state has a trivial destructor, which makes release()
// calls during late static/thread teardown safe regardless of destruction
// order.
//
// Requirements on T: default-constructible, and an accessible member
// `T* pool_next_` the pool may use while the object is free.

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace evmp::common {

/// Per-type pool statistics (monotone, approximate under races).
struct ObjectPoolStats {
  std::uint64_t allocated = 0;    ///< nodes ever created (slab allocations)
  std::uint64_t slab_allocs = 0;  ///< slabs allocated
};

/// Static (per-T, process-wide) pool of reusable nodes.
template <class T, std::size_t kSlabNodes = 16, std::size_t kCacheMax = 64,
          std::size_t kTransferBatch = 32>
class ObjectPool {
 public:
  /// Take a node (recycled or freshly slab-allocated). The node is in
  /// whatever state its last user left it: callers re-arm it themselves.
  static T* acquire() {
    Cache& c = cache();
    if (c.head == nullptr) refill(c);
    T* node = c.head;
    c.head = node->pool_next_;
    --c.count;
    node->pool_next_ = nullptr;
    return node;
  }

  /// Return a node to the calling thread's cache (flushing a batch to the
  /// global list past the cache cap).
  static void release(T* node) noexcept {
    Cache& c = cache();
    node->pool_next_ = c.head;
    c.head = node;
    ++c.count;
    if (c.count >= kCacheMax) flush(c, kCacheMax / 2);
  }

  static ObjectPoolStats stats() noexcept {
    Global& g = global();
    ObjectPoolStats s;
    s.allocated = g.allocated.load(std::memory_order_relaxed);
    s.slab_allocs = g.slab_allocs.load(std::memory_order_relaxed);
    return s;
  }

 private:
  struct Slab {
    T nodes[kSlabNodes];
    Slab* next = nullptr;
  };

  /// Trivially destructible on purpose: cache flushes may run during
  /// thread/static teardown in any order.
  struct Global {
    std::atomic_flag lock = ATOMIC_FLAG_INIT;
    T* head = nullptr;          ///< guarded by lock
    Slab* slabs = nullptr;      ///< guarded by lock; never freed (reachable)
    std::atomic<std::uint64_t> allocated{0};
    std::atomic<std::uint64_t> slab_allocs{0};
  };

  struct Cache {
    T* head = nullptr;
    std::size_t count = 0;
    ~Cache() {
      if (head != nullptr) ObjectPool::flush(*this, count);
    }
  };

  static Global& global() noexcept {
    static Global instance;
    return instance;
  }

  static Cache& cache() noexcept {
    thread_local Cache instance;
    return instance;
  }

  static void lock_global(Global& g) noexcept {
    while (g.lock.test_and_set(std::memory_order_acquire)) {
      // Contention is one lock hold per kTransferBatch dispatches; plain
      // spinning is fine.
    }
  }

  static void unlock_global(Global& g) noexcept {
    g.lock.clear(std::memory_order_release);
  }

  /// Move up to kTransferBatch nodes from the global list into `c`,
  /// allocating a fresh slab when the global list is dry.
  static void refill(Cache& c) {
    Global& g = global();
    lock_global(g);
    for (std::size_t i = 0; i < kTransferBatch && g.head != nullptr; ++i) {
      T* node = g.head;
      g.head = node->pool_next_;
      node->pool_next_ = c.head;
      c.head = node;
      ++c.count;
    }
    if (c.head == nullptr) {
      Slab* slab = new Slab;
      slab->next = g.slabs;
      g.slabs = slab;
      g.allocated.fetch_add(kSlabNodes, std::memory_order_relaxed);
      g.slab_allocs.fetch_add(1, std::memory_order_relaxed);
      for (std::size_t i = 0; i < kSlabNodes; ++i) {
        slab->nodes[i].pool_next_ = c.head;
        c.head = &slab->nodes[i];
      }
      c.count += kSlabNodes;
    }
    unlock_global(g);
  }

  /// Push `n` nodes from `c` onto the global list under one lock hold.
  static void flush(Cache& c, std::size_t n) noexcept {
    // Detach the batch locally first to keep the critical section short.
    T* batch_head = nullptr;
    T* batch_tail = nullptr;
    for (std::size_t i = 0; i < n && c.head != nullptr; ++i) {
      T* node = c.head;
      c.head = node->pool_next_;
      --c.count;
      node->pool_next_ = batch_head;
      if (batch_head == nullptr) batch_tail = node;
      batch_head = node;
    }
    if (batch_head == nullptr) return;
    Global& g = global();
    lock_global(g);
    batch_tail->pool_next_ = g.head;
    g.head = batch_head;
    unlock_global(g);
  }
};

}  // namespace evmp::common

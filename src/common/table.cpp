#include "common/table.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace evmp::common {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void TextTable::set_header(std::vector<std::string> cols) {
  header_ = std::move(cols);
}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(std::max(cells.size(), header_.size()));
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << "  ";
      if (looks_numeric(cell)) {
        os << std::setw(static_cast<int>(widths[c])) << std::right << cell;
      } else {
        os << std::setw(static_cast<int>(widths[c])) << std::left << cell;
      }
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

bool write_csv(const TextTable& table, const std::string& path) {
  std::filesystem::path p(path);
  std::error_code ec;
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(p);
  if (!out) return false;
  table.print_csv(out);
  return static_cast<bool>(out);
}

}  // namespace evmp::common

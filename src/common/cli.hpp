#pragma once
// Minimal command-line flag parser shared by the bench binaries and
// examples: supports --name=value, --name value, and boolean --name.
//
// Binding is greedy: in `--flag token`, `token` becomes the flag's value
// unless it starts with "--". Place positional arguments before any bare
// boolean flag (or use --flag=1) to avoid the ambiguity.

#include <map>
#include <string>
#include <vector>

namespace evmp::common {

/// Parses argv into flags and positional arguments.
class CliArgs {
 public:
  CliArgs(int argc, char** argv);

  /// True if --name was given (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Value of --name, or fallback if absent.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback = "") const;
  [[nodiscard]] long get_long(const std::string& name, long fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Parse a comma-separated list of longs, e.g. --loads=10,20,50.
  [[nodiscard]] std::vector<long> get_long_list(
      const std::string& name, std::vector<long> fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace evmp::common

#include "common/cli.hpp"

#include <cstdlib>
#include <sstream>

namespace evmp::common {

CliArgs::CliArgs(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

long CliArgs::get_long(const std::string& name, long fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  return (end != it->second.c_str() && *end == '\0') ? v : fallback;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end != it->second.c_str() && *end == '\0') ? v : fallback;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  if (it->second.empty()) return true;  // bare --flag
  return it->second == "1" || it->second == "true" || it->second == "yes";
}

std::vector<long> CliArgs::get_long_list(const std::string& name,
                                         std::vector<long> fallback) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return fallback;
  std::vector<long> out;
  std::stringstream ss(it->second);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) continue;
    out.push_back(std::strtol(tok.c_str(), nullptr, 10));
  }
  return out.empty() ? fallback : out;
}

}  // namespace evmp::common

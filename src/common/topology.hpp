#pragma once
// CPU topology discovery: SMT siblings, shared-LLC groups and NUMA nodes,
// read once at startup from /sys/devices/system/cpu (Linux) with a flat
// single-node fallback everywhere else.
//
// The work-stealing executor uses this to order steal victims near-before-
// far: stealing from an SMT sibling or an LLC peer moves the task's cache
// footprint across a shared cache, while stealing from a remote NUMA node
// drags every captured cache line over the interconnect. ROADMAP item 5
// (elastic, topology-aware scheduling) and DESIGN.md §11 motivate the
// tiers; EXPERIMENTS.md §EL1 measures them.
//
// Discovery is deliberately forgiving: each per-CPU attribute degrades
// independently (no siblings file → the CPU is its own SMT group; no cache
// dir → one shared LLC; no node links → one node), and an unreadable root
// degrades to flat(n). A flat topology ranks every peer at the same
// distance, so victim ordering reduces to the shuffled-uniform order the
// executor used before this module existed — systems without sysfs lose
// the optimisation, never correctness.

#include <cstdint>
#include <string>
#include <vector>

namespace evmp::common {

/// Immutable snapshot of the machine's CPU topology. Copyable; computed
/// once per process for the shared instance().
class Topology {
 public:
  /// One logical CPU. Group ids are canonicalised as the smallest CPU id
  /// in the group, so two CPUs share a level iff their ids are equal.
  struct Cpu {
    int id = 0;
    int smt_group = 0;   ///< hardware threads of one physical core
    int llc_group = 0;   ///< CPUs sharing the last-level cache
    int numa_node = 0;   ///< CPUs sharing a memory controller
  };

  /// Distance tiers between two CPUs (used for victim ordering).
  enum class Distance : int {
    kSelf = 0,     ///< the same logical CPU
    kSmt = 1,      ///< same physical core (SMT siblings)
    kLlc = 2,      ///< same last-level cache
    kNode = 3,     ///< same NUMA node
    kRemote = 4,   ///< different NUMA node
  };

  /// A worker's steal order: other workers sorted near-before-far,
  /// randomised within each distance tier. `near_count` is the prefix
  /// length of victims within LLC distance (Distance <= kLlc).
  struct VictimOrder {
    std::vector<int> order;
    std::size_t near_count = 0;
  };

  /// The process-wide topology: sysfs discovery on Linux, flat fallback
  /// elsewhere. Computed on first use, immutable afterwards.
  static const Topology& instance();

  /// Parse a sysfs cpu tree rooted at `root` (normally
  /// "/sys/devices/system/cpu"; tests point it at synthetic fixtures).
  /// Falls back to flat(fallback_cpus) when the root yields no CPUs.
  static Topology from_sysfs(const std::string& root, int fallback_cpus = 0);

  /// Flat single-node model: n CPUs, one shared LLC, one NUMA node, no
  /// SMT pairing. Every cross-CPU distance is kLlc (uniform).
  static Topology flat(int num_cpus);

  /// Build from explicit records (tests, fake machines). Records are
  /// reindexed by position; group ids are re-canonicalised.
  static Topology from_cpus(std::vector<Cpu> cpus);

  [[nodiscard]] int num_cpus() const noexcept {
    return static_cast<int>(cpus_.size());
  }
  [[nodiscard]] const Cpu& cpu(int id) const { return cpus_.at(static_cast<std::size_t>(id)); }
  /// True when at least one sysfs topology attribute was actually read;
  /// false for flat fallbacks.
  [[nodiscard]] bool discovered() const noexcept { return discovered_; }
  [[nodiscard]] int num_nodes() const noexcept { return num_nodes_; }

  /// Distance tier between two logical CPUs.
  [[nodiscard]] Distance distance(int a, int b) const;

  /// The CPU a worker of a `worker_count`-wide pool lands on: workers map
  /// round-robin over the CPUs (worker i → cpu i mod num_cpus).
  [[nodiscard]] int cpu_for_worker(int worker_index) const noexcept;

  /// Near-before-far steal order for `self` among `worker_count` workers.
  /// Victims are grouped by distance(cpu(self), cpu(victim)) and shuffled
  /// within each tier with a deterministic per-worker RNG, so equal-tier
  /// victims spread contention instead of forming a convoy on one peer.
  [[nodiscard]] VictimOrder victim_order(int self, int worker_count,
                                         std::uint64_t seed = 0) const;

  /// Pin the calling thread to one CPU (sched_setaffinity). Returns false
  /// where unsupported or refused — callers must treat pinning as a hint.
  static bool pin_current_thread(int cpu) noexcept;

 private:
  std::vector<Cpu> cpus_;
  bool discovered_ = false;
  int num_nodes_ = 1;
};

/// Parse a sysfs cpulist string ("0-3,8,10-11") into CPU ids (sorted,
/// deduplicated). Malformed input yields the prefix parsed so far.
std::vector<int> parse_cpulist(const std::string& text);

}  // namespace evmp::common

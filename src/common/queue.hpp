#pragma once
// Thread-safe queues used by executors and the event loop.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace evmp::common {

/// Unbounded multi-producer multi-consumer FIFO with blocking pop and a
/// cooperative close() for shutdown. The workhorse behind ThreadPoolExecutor
/// and the event queue. Mutex-based by design: queue depths in this system
/// are small and correctness under shutdown matters more than raw ops/sec.
template <class T>
class MpmcQueue {
 public:
  MpmcQueue() = default;
  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Push an item. Returns false (drops the item) if the queue is closed.
  /// The notify happens under the lock: once the mutex is released, a
  /// consumer may pop the item, conclude the program phase, and destroy
  /// this queue — notifying after unlock would then touch a dead cv.
  bool push(T item) {
    std::scoped_lock lk(mu_);
    if (closed_) return false;
    items_.push_back(std::move(item));
    cv_.notify_one();
    return true;
  }

  /// Push to the front (priority delivery, e.g. shutdown sentinels).
  bool push_front(T item) {
    std::scoped_lock lk(mu_);
    if (closed_) return false;
    items_.push_front(std::move(item));
    cv_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed and drained.
  /// Returns nullopt only on closed-and-empty.
  std::optional<T> pop() {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking pop; nullopt when empty.
  std::optional<T> try_pop() {
    std::scoped_lock lk(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Block up to `timeout`; nullopt on timeout or closed-and-empty.
  template <class Rep, class Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lk(mu_);
    if (!cv_.wait_for(lk, timeout,
                      [&] { return closed_ || !items_.empty(); })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Close the queue: pending items remain poppable, new pushes are refused,
  /// blocked consumers wake once the queue drains.
  void close() {
    std::scoped_lock lk(mu_);
    closed_ = true;
    cv_.notify_all();  // under the lock: see push()
  }

  [[nodiscard]] bool closed() const {
    std::scoped_lock lk(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lk(mu_);
    return items_.size();
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace evmp::common

#include "common/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

namespace evmp::common {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel-merge formula.
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nab = na + nb;
  mean_ += delta * nb / nab;
  m2_ += other.m2_ + delta * delta * na * nb / nab;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void PercentileSampler::merge(const PercentileSampler& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

double PercentileSampler::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

void PercentileSampler::ensure_sorted() const {
  if (!sorted_) {
    auto& v = const_cast<std::vector<double>&>(samples_);
    std::sort(v.begin(), v.end());
    const_cast<bool&>(sorted_) = true;
  }
}

double PercentileSampler::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

LatencyHistogram::LatencyHistogram() : counts_(kBuckets) {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
}

std::size_t LatencyHistogram::bucket_of(std::uint64_t ns) noexcept {
  if (ns < (1u << kSubBits)) return static_cast<std::size_t>(ns);
  const int msb = 63 - std::countl_zero(ns);
  const int sub =
      static_cast<int>((ns >> (msb - kSubBits)) & ((1u << kSubBits) - 1));
  return static_cast<std::size_t>(((msb - kSubBits + 1) << kSubBits) + sub);
}

std::uint64_t LatencyHistogram::bucket_midpoint(std::size_t b) noexcept {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  bucket_bounds(b, &lo, &hi);
  return lo + (hi - lo) / 2;
}

void LatencyHistogram::bucket_bounds(std::size_t b, std::uint64_t* lo,
                                     std::uint64_t* hi) noexcept {
  if (b < (1u << kSubBits)) {
    *lo = *hi = b;
    return;
  }
  const std::size_t exp = (b >> kSubBits) + kSubBits - 1;
  const std::uint64_t sub = b & ((1u << kSubBits) - 1);
  const std::uint64_t width = 1ull << (exp - kSubBits);
  *lo = (1ull << exp) + sub * width;
  *hi = *lo + width - 1;
}

void LatencyHistogram::record(std::uint64_t ns) noexcept {
  counts_[bucket_of(ns)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(ns, std::memory_order_relaxed);
  n_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::total_count() const noexcept {
  return n_.load(std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::percentile(double q) const noexcept {
  const std::uint64_t total = total_count();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    seen += counts_[b].load(std::memory_order_relaxed);
    if (seen >= target) return bucket_midpoint(b);
  }
  return bucket_midpoint(counts_.size() - 1);
}

double LatencyHistogram::mean_ns() const noexcept {
  const std::uint64_t total = total_count();
  if (total == 0) return 0.0;
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
         static_cast<double>(total);
}

HistogramSnapshot LatencyHistogram::snapshot() const noexcept {
  HistogramSnapshot s;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    s.counts_[b] = counts_[b].load(std::memory_order_relaxed);
  }
  s.sum_ = sum_.load(std::memory_order_relaxed);
  s.n_ = n_.load(std::memory_order_relaxed);
  return s;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::uint64_t c = other.counts_[b].load(std::memory_order_relaxed);
    if (c != 0) counts_[b].fetch_add(c, std::memory_order_relaxed);
  }
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  n_.fetch_add(other.n_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
}

double HistogramSnapshot::mean_ns() const noexcept {
  if (n_ == 0) return 0.0;
  return static_cast<double>(sum_) / static_cast<double>(n_);
}

std::uint64_t HistogramSnapshot::percentile(double q) const noexcept {
  if (n_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(n_)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (counts_[b] == 0) continue;
    seen += counts_[b];
    if (seen < target) continue;
    // Interpolate linearly inside the landing bucket: the target rank's
    // position among the bucket's own samples picks the value between the
    // bucket's bounds instead of rounding to its midpoint.
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    LatencyHistogram::bucket_bounds(b, &lo, &hi);
    const std::uint64_t before = seen - counts_[b];
    const double frac = static_cast<double>(target - before) /
                        static_cast<double>(counts_[b]);
    return lo + static_cast<std::uint64_t>(
                    frac * static_cast<double>(hi - lo) + 0.5);
  }
  return 0;  // unreachable: target <= n_ and the buckets sum to n_
}

LatencyQuantiles HistogramSnapshot::quantiles() const noexcept {
  LatencyQuantiles q;
  if (n_ == 0) return q;
  q.p50 = percentile(0.50);
  q.p90 = percentile(0.90);
  q.p99 = percentile(0.99);
  q.p999 = percentile(0.999);
  q.mean_ns = mean_ns();
  for (std::size_t b = counts_.size(); b-- > 0;) {
    if (counts_[b] == 0) continue;
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    LatencyHistogram::bucket_bounds(b, &lo, &hi);
    q.max = hi;
    break;
  }
  return q;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) noexcept {
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    counts_[b] += other.counts_[b];
  }
  sum_ += other.sum_;
  n_ += other.n_;
}

std::string LatencyHistogram::summary() const {
  std::ostringstream os;
  os << "n=" << total_count() << " mean=" << mean_ns() / 1e6 << "ms"
     << " p50=" << static_cast<double>(percentile(0.50)) / 1e6 << "ms"
     << " p99=" << static_cast<double>(percentile(0.99)) / 1e6 << "ms"
     << " max=" << static_cast<double>(percentile(1.0)) / 1e6 << "ms";
  return os.str();
}

void LatencyHistogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  n_.store(0, std::memory_order_relaxed);
}

}  // namespace evmp::common

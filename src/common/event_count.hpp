#pragma once
// EventCount: the classic "eventcount" sleep/wake primitive (Vyukov-style,
// as popularised by folly::EventCount), packed into one 64-bit atomic word:
// low 32 bits = number of waiters currently between prepare_wait() and
// wake-up, high 32 bits = notification epoch.
//
// It lets a consumer park on an arbitrary lock-free condition without a
// mutex and without lost wakeups:
//
//   consumer:  key = ec.prepare_wait();        // announce intent (RMW)
//              if (queue.try_pop(x)) { ec.cancel_wait(); ... }
//              else ec.commit_wait(key);       // sleep unless epoch moved
//
//   producer:  queue.push(x);                  // make condition true
//              ec.notify_one();                // bump epoch, wake if waiters
//
// Correctness: prepare_wait() and notify_*() are both acq_rel RMWs on the
// same word, so they are totally ordered. If the producer's push lands
// after the consumer's re-check, the producer's epoch bump is ordered
// after prepare_wait() and commit_wait() observes the changed epoch and
// returns immediately; if the push landed before the re-check, the
// consumer saw the item and cancelled. Either way no wakeup is lost — the
// property tests/test_chase_lev.cpp regression-tests by hammering a
// single-slot handoff.
//
// Replaces the executor's single `idle_cv_` + 1 ms polling: notify_one()
// when there are no waiters is one relaxed-failing RMW and NO syscall, so
// the task-post fast path stays cheap, and parked workers wake exactly
// when work arrives instead of rescanning N queues every millisecond in a
// thundering herd.

#include <atomic>
#include <cstdint>
#include <thread>

namespace evmp::common {

class EventCount {
 public:
  /// Opaque ticket from prepare_wait(), consumed by commit/cancel.
  class WaitKey {
   public:
    explicit WaitKey(std::uint32_t epoch) : epoch_(epoch) {}

   private:
    friend class EventCount;
    std::uint32_t epoch_;
  };

  EventCount() = default;
  EventCount(const EventCount&) = delete;
  EventCount& operator=(const EventCount&) = delete;

  /// Announce intent to sleep. MUST be followed by exactly one of
  /// commit_wait(key) or cancel_wait(); re-check the wait condition in
  /// between.
  [[nodiscard]] WaitKey prepare_wait() noexcept {
    const std::uint64_t prev =
        word_.fetch_add(kWaiterInc, std::memory_order_acq_rel);
    return WaitKey(static_cast<std::uint32_t>(prev >> kEpochShift));
  }

  /// Condition became true between prepare and commit: stand down.
  void cancel_wait() noexcept {
    word_.fetch_sub(kWaiterInc, std::memory_order_acq_rel);
  }

  /// Park until the epoch moves past the one captured by prepare_wait().
  /// Returns immediately if a notify already intervened.
  void commit_wait(WaitKey key) noexcept {
    while (true) {
      const std::uint64_t w = word_.load(std::memory_order_acquire);
      if (static_cast<std::uint32_t>(w >> kEpochShift) != key.epoch_) break;
      word_.wait(w, std::memory_order_acquire);
    }
    word_.fetch_sub(kWaiterInc, std::memory_order_acq_rel);
  }

  /// Wake one waiter (if any). Always bumps the epoch so a concurrent
  /// prepare/commit pair cannot miss this notification.
  void notify_one() noexcept {
    const std::uint64_t prev =
        word_.fetch_add(kEpochInc, std::memory_order_acq_rel);
    if ((prev & kWaiterMask) != 0) word_.notify_one();
  }

  /// Wake all waiters (shutdown, barrier release).
  void notify_all() noexcept {
    const std::uint64_t prev =
        word_.fetch_add(kEpochInc, std::memory_order_acq_rel);
    if ((prev & kWaiterMask) != 0) word_.notify_all();
  }

  /// True if any thread is between prepare_wait() and wake-up. Used by
  /// producers to skip even the epoch bump on the ultra-hot path; callers
  /// must tolerate the inherent race (a waiter arriving just after the
  /// load is caught by its own re-check of the condition).
  [[nodiscard]] bool has_waiters() const noexcept {
    return (word_.load(std::memory_order_acquire) & kWaiterMask) != 0;
  }

 private:
  static constexpr std::uint64_t kWaiterInc = 1;
  static constexpr std::uint64_t kWaiterMask = 0xffffffffULL;
  static constexpr int kEpochShift = 32;
  static constexpr std::uint64_t kEpochInc = 1ULL << kEpochShift;

  alignas(64) std::atomic<std::uint64_t> word_{0};
};

/// Bounded spin-then-yield helper shared by the executor workers and the
/// fork-join barrier. Mirrors the ladder in exec::detail::CompletionState:
/// pause-spin only on multi-core hosts (spinning on 1 CPU just steals the
/// producer's timeslice), then a few yields, then the caller should park.
class SpinWait {
 public:
  /// One step up the backoff ladder. Returns false once the caller should
  /// stop spinning and park on a real waiting primitive.
  bool spin() noexcept {
    if (spins_ < pause_budget()) {
      ++spins_;
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#else
      std::this_thread::yield();
#endif
      return true;
    }
    if (spins_ < pause_budget() + kYields) {
      ++spins_;
      std::this_thread::yield();
      return true;
    }
    return false;
  }

  void reset() noexcept { spins_ = 0; }

 private:
  static int pause_budget() noexcept {
    static const int budget =
        std::thread::hardware_concurrency() > 1 ? 128 : 0;
    return budget;
  }

  static constexpr int kYields = 16;
  int spins_ = 0;
};

}  // namespace evmp::common

#include "common/logging.hpp"

#include <atomic>
#include <cstdio>

#include "common/env.hpp"

namespace evmp::common {

namespace {

std::atomic<int> g_level = [] {
  if (auto v = env_long("EVMP_LOG_LEVEL")) {
    return static_cast<int>(*v);
  }
  return static_cast<int>(LogLevel::kWarn);
}();

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& msg) {
  // One fprintf call per line: POSIX stdio is internally locked, so lines
  // from different threads never interleave.
  std::fprintf(stderr, "[evmp:%s] %s\n", level_name(level), msg.c_str());
}

}  // namespace evmp::common

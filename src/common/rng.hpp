#pragma once
// Deterministic, fast pseudo-random number generation.
//
// Benchmarks and kernels must be reproducible across runs, so everything
// seeds explicitly; nothing reads std::random_device.

#include <cstdint>
#include <cmath>

namespace evmp::common {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the repository-wide general purpose generator.
/// Satisfies UniformRandomBitGenerator so it also plugs into <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bull) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift reduction.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    const auto x = next();
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(x) * bound) >> 64);
  }

  /// Exponentially distributed sample with the given mean (inter-arrival
  /// times of a Poisson process; used by the open-loop load generator).
  double next_exponential(double mean) noexcept {
    double u;
    do {
      u = next_double();
    } while (u <= 0.0);
    return -mean * std::log(u);
  }

  /// Standard normal sample (Box-Muller; one value per call, the pair's
  /// sibling is discarded to keep the generator stateless across calls).
  double next_gaussian() noexcept;

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace evmp::common

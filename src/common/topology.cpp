#include "common/topology.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <thread>

#include "common/rng.hpp"

#if defined(__linux__)
#include <sched.h>
#endif

namespace evmp::common {

namespace {

namespace fs = std::filesystem;

std::optional<std::string> read_file(const fs::path& path) {
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) return std::nullopt;
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string text;
  std::getline(in, text);
  return text;
}

int min_or(const std::vector<int>& ids, int fallback) {
  return ids.empty() ? fallback : *std::min_element(ids.begin(), ids.end());
}

int default_cpu_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// The LLC group of one CPU: the shared_cpu_list of its deepest unified
/// cache level, canonicalised to the smallest member id.
std::optional<int> read_llc_group(const fs::path& cpu_dir, int self) {
  const fs::path cache = cpu_dir / "cache";
  std::error_code ec;
  if (!fs::is_directory(cache, ec) || ec) return std::nullopt;
  int best_level = -1;
  int group = self;
  for (const auto& entry : fs::directory_iterator(cache, ec)) {
    if (ec) break;
    const std::string name = entry.path().filename().string();
    if (name.rfind("index", 0) != 0) continue;
    const auto level_text = read_file(entry.path() / "level");
    const auto shared = read_file(entry.path() / "shared_cpu_list");
    if (!level_text || !shared) continue;
    const int level = std::atoi(level_text->c_str());
    if (level <= best_level) continue;
    const auto ids = parse_cpulist(*shared);
    if (ids.empty()) continue;
    best_level = level;
    group = min_or(ids, self);
  }
  if (best_level < 0) return std::nullopt;
  return group;
}

/// NUMA node of one CPU via its nodeN link (sysfs places a symlink named
/// after the node inside each cpu directory).
std::optional<int> read_numa_node(const fs::path& cpu_dir) {
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(cpu_dir, ec)) {
    if (ec) break;
    const std::string name = entry.path().filename().string();
    if (name.rfind("node", 0) != 0 || name.size() <= 4) continue;
    if (!std::isdigit(static_cast<unsigned char>(name[4]))) continue;
    return std::atoi(name.c_str() + 4);
  }
  return std::nullopt;
}

}  // namespace

std::vector<int> parse_cpulist(const std::string& text) {
  std::vector<int> ids;
  std::size_t i = 0;
  const auto digit = [&](std::size_t at) {
    return at < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[at])) != 0;
  };
  while (i < text.size()) {
    if (!digit(i)) break;
    int lo = 0;
    while (digit(i)) lo = lo * 10 + (text[i++] - '0');
    int hi = lo;
    if (i < text.size() && text[i] == '-') {
      ++i;
      if (!digit(i)) {
        ids.push_back(lo);  // "4-": keep the parsed endpoint
        break;
      }
      hi = 0;
      while (digit(i)) hi = hi * 10 + (text[i++] - '0');
    }
    for (int id = lo; id <= hi && id - lo < 4096; ++id) ids.push_back(id);
    if (i < text.size() && text[i] == ',') ++i;
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

const Topology& Topology::instance() {
  static const Topology topo =
      from_sysfs("/sys/devices/system/cpu", default_cpu_count());
  return topo;
}

Topology Topology::flat(int num_cpus) {
  if (num_cpus < 1) num_cpus = 1;
  Topology t;
  t.cpus_.resize(static_cast<std::size_t>(num_cpus));
  for (int i = 0; i < num_cpus; ++i) {
    // One LLC, one node, no SMT pairing: every cross-CPU distance is kLlc.
    t.cpus_[static_cast<std::size_t>(i)] = Cpu{i, i, 0, 0};
  }
  t.discovered_ = false;
  t.num_nodes_ = 1;
  return t;
}

Topology Topology::from_cpus(std::vector<Cpu> cpus) {
  Topology t;
  if (cpus.empty()) return flat(1);
  t.cpus_ = std::move(cpus);
  int max_node = 0;
  for (std::size_t i = 0; i < t.cpus_.size(); ++i) {
    t.cpus_[i].id = static_cast<int>(i);
    max_node = std::max(max_node, t.cpus_[i].numa_node);
  }
  // Re-canonicalise group ids as the smallest member id so equality
  // comparisons are meaningful regardless of how the caller labelled them.
  for (auto group : {&Cpu::smt_group, &Cpu::llc_group}) {
    std::vector<int> canon(t.cpus_.size());
    for (std::size_t i = 0; i < t.cpus_.size(); ++i) {
      int lowest = static_cast<int>(i);
      for (std::size_t j = 0; j < i; ++j) {
        if (t.cpus_[j].*group == t.cpus_[i].*group) {
          lowest = static_cast<int>(j);
          break;
        }
      }
      canon[i] = lowest;
    }
    for (std::size_t i = 0; i < t.cpus_.size(); ++i) {
      t.cpus_[i].*group = canon[i];
    }
  }
  t.discovered_ = true;
  t.num_nodes_ = max_node + 1;
  return t;
}

Topology Topology::from_sysfs(const std::string& root, int fallback_cpus) {
  const fs::path base(root);
  if (fallback_cpus < 1) fallback_cpus = default_cpu_count();

  // CPU inventory: the `possible` (or `online`) cpulist, else cpuN dirs.
  std::vector<int> cpu_ids;
  for (const char* file : {"possible", "online"}) {
    if (const auto text = read_file(base / file)) {
      cpu_ids = parse_cpulist(*text);
      if (!cpu_ids.empty()) break;
    }
  }
  if (cpu_ids.empty()) {
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(base, ec)) {
      if (ec) break;
      const std::string name = entry.path().filename().string();
      if (name.size() > 3 && name.rfind("cpu", 0) == 0 &&
          std::all_of(name.begin() + 3, name.end(), [](char c) {
            return std::isdigit(static_cast<unsigned char>(c)) != 0;
          })) {
        cpu_ids.push_back(std::atoi(name.c_str() + 3));
      }
    }
    std::sort(cpu_ids.begin(), cpu_ids.end());
  }
  if (cpu_ids.empty()) return flat(fallback_cpus);

  // Sysfs ids can be sparse; index densely in id order (worker mapping and
  // pinning both go through cpu().id, which keeps the sysfs id).
  Topology t;
  bool any_attribute = false;
  t.cpus_.reserve(cpu_ids.size());
  for (const int id : cpu_ids) {
    const fs::path cpu_dir = base / ("cpu" + std::to_string(id));
    Cpu cpu;
    cpu.id = id;
    cpu.smt_group = id;
    cpu.llc_group = 0;
    cpu.numa_node = 0;
    if (const auto siblings =
            read_file(cpu_dir / "topology" / "thread_siblings_list")) {
      cpu.smt_group = min_or(parse_cpulist(*siblings), id);
      any_attribute = true;
    }
    if (const auto llc = read_llc_group(cpu_dir, id)) {
      cpu.llc_group = *llc;
      any_attribute = true;
    } else {
      cpu.llc_group = id;  // unknown cache: assume private (no near tier)
    }
    if (const auto node = read_numa_node(cpu_dir)) {
      cpu.numa_node = *node;
      any_attribute = true;
    }
    t.cpus_.push_back(cpu);
  }
  if (!any_attribute) {
    // A bare cpu list with no topology attributes carries no distance
    // information — degrade to the uniform flat model.
    return flat(static_cast<int>(cpu_ids.size()));
  }

  // Positions, not sysfs ids, index cpus_ — remap group ids accordingly.
  std::vector<Cpu> records = std::move(t.cpus_);
  std::vector<int> pos(static_cast<std::size_t>(cpu_ids.back()) + 1, 0);
  for (std::size_t i = 0; i < cpu_ids.size(); ++i) {
    pos[static_cast<std::size_t>(cpu_ids[i])] = static_cast<int>(i);
  }
  for (auto& cpu : records) {
    const auto remap = [&](int id) {
      return (id >= 0 && id <= cpu_ids.back()) ? pos[static_cast<std::size_t>(id)]
                                               : 0;
    };
    cpu.smt_group = remap(cpu.smt_group);
    cpu.llc_group = remap(cpu.llc_group);
  }
  Topology result = from_cpus(std::move(records));
  // from_cpus overwrote the dense ids; restore the sysfs ids for pinning.
  for (std::size_t i = 0; i < cpu_ids.size(); ++i) {
    result.cpus_[i].id = cpu_ids[i];
  }
  return result;
}

Topology::Distance Topology::distance(int a, int b) const {
  if (a == b) return Distance::kSelf;
  const Cpu& ca = cpu(a);
  const Cpu& cb = cpu(b);
  if (ca.smt_group == cb.smt_group) return Distance::kSmt;
  if (ca.llc_group == cb.llc_group) return Distance::kLlc;
  if (ca.numa_node == cb.numa_node) return Distance::kNode;
  return Distance::kRemote;
}

int Topology::cpu_for_worker(int worker_index) const noexcept {
  const int n = num_cpus();
  if (worker_index < 0 || n == 0) return 0;
  return worker_index % n;
}

Topology::VictimOrder Topology::victim_order(int self, int worker_count,
                                             std::uint64_t seed) const {
  VictimOrder result;
  if (worker_count <= 1) return result;
  const int self_cpu = cpu_for_worker(self);
  // Bucket the other workers by distance tier (kSmt..kRemote).
  std::vector<std::vector<int>> tiers(4);
  for (int w = 0; w < worker_count; ++w) {
    if (w == self) continue;
    const Distance d = distance(self_cpu, cpu_for_worker(w));
    // Two workers folded onto one CPU (more workers than CPUs) rank as
    // SMT-near: they literally share the core.
    const int tier = d == Distance::kSelf
                         ? 0
                         : static_cast<int>(d) - static_cast<int>(Distance::kSmt);
    tiers[static_cast<std::size_t>(tier)].push_back(w);
  }
  Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ull + static_cast<std::uint64_t>(self) + 1);
  result.order.reserve(static_cast<std::size_t>(worker_count) - 1);
  for (std::size_t tier = 0; tier < tiers.size(); ++tier) {
    auto& bucket = tiers[tier];
    // Fisher–Yates within the tier: equal-distance victims are probed in a
    // per-worker random order so thieves fan out instead of convoying.
    for (std::size_t i = bucket.size(); i > 1; --i) {
      std::swap(bucket[i - 1], bucket[rng.next_below(i)]);
    }
    result.order.insert(result.order.end(), bucket.begin(), bucket.end());
    if (tier <= 1) result.near_count = result.order.size();  // SMT + LLC
  }
  return result;
}

bool Topology::pin_current_thread(int cpu) noexcept {
#if defined(__linux__)
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace evmp::common

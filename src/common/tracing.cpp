#include "common/tracing.hpp"

#include <fstream>

namespace evmp::common {

Tracer& Tracer::instance() {
  // Intentionally leaked: executors owned by function-local statics (the
  // swing-worker pool) publish counters from their atexit destructors, so
  // the tracer must outlive every other static. The pointer keeps the
  // object reachable for LeakSanitizer.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::enable(bool on) {
  {
    std::scoped_lock lk(mu_);
    if (on) epoch_ = now();
  }
  enabled_.store(on, std::memory_order_relaxed);
}

void Tracer::record(std::string_view name, std::string_view category,
                    TimePoint start, TimePoint end) {
  if (!enabled()) return;
  std::scoped_lock lk(mu_);
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  TraceSpan span;
  span.name = std::string(name);
  span.category = std::string(category);
  span.start_us = elapsed_ns(epoch_, start) / 1000;
  span.duration_us = elapsed_ns(start, end) / 1000;
  span.thread_id = current_thread_id();
  spans_.push_back(std::move(span));
}

std::vector<TraceSpan> Tracer::snapshot() const {
  std::scoped_lock lk(mu_);
  return spans_;
}

std::size_t Tracer::size() const {
  std::scoped_lock lk(mu_);
  return spans_.size();
}

std::size_t Tracer::dropped() const {
  std::scoped_lock lk(mu_);
  return dropped_;
}

void Tracer::clear() {
  std::scoped_lock lk(mu_);
  spans_.clear();
  dropped_ = 0;
}

void Tracer::set_capacity(std::size_t cap) {
  std::scoped_lock lk(mu_);
  capacity_ = cap;
}

void Tracer::set_counter(std::string name, std::uint64_t value) {
  std::scoped_lock lk(counters_mu_);
  counters_[std::move(name)] = value;
}

void Tracer::add_counter(std::string name, std::uint64_t delta) {
  std::scoped_lock lk(counters_mu_);
  counters_[std::move(name)] += delta;
}

std::map<std::string, std::uint64_t> Tracer::counters() const {
  std::scoped_lock lk(counters_mu_);
  return counters_;
}

void Tracer::clear_counters() {
  std::scoped_lock lk(counters_mu_);
  counters_.clear();
}

std::uint32_t Tracer::current_thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace {

void json_escape_into(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += "\\u0020";  // control chars never appear in our names anyway
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

bool Tracer::write_chrome_trace(const std::string& path) const {
  const auto spans = snapshot();
  std::ofstream out(path);
  if (!out) return false;
  out << "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& s : spans) {
    if (!first) out << ",\n";
    first = false;
    std::string name;
    json_escape_into(name, s.name);
    std::string cat;
    json_escape_into(cat, s.category);
    out << "{\"name\":\"" << name << "\",\"cat\":\"" << cat
        << "\",\"ph\":\"X\",\"ts\":" << s.start_us
        << ",\"dur\":" << s.duration_us << ",\"pid\":1,\"tid\":"
        << s.thread_id << "}";
  }
  out << "\n]}\n";
  return static_cast<bool>(out);
}

}  // namespace evmp::common

#pragma once
// Timing utilities shared by the runtime, benchmarks and tests.
//
// All durations in this codebase are steady-clock based; wall-clock time is
// never used for measurement (it can jump).

#include <chrono>
#include <cstdint>

namespace evmp::common {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;
using Nanos = std::chrono::nanoseconds;
using Micros = std::chrono::microseconds;
using Millis = std::chrono::milliseconds;

/// Current steady-clock time.
inline TimePoint now() noexcept { return Clock::now(); }

/// Nanoseconds elapsed between two time points (b - a).
inline std::int64_t elapsed_ns(TimePoint a, TimePoint b) noexcept {
  return std::chrono::duration_cast<Nanos>(b - a).count();
}

/// Convert a duration to fractional milliseconds (for reporting).
template <class Rep, class Period>
double to_ms(std::chrono::duration<Rep, Period> d) noexcept {
  return std::chrono::duration<double, std::milli>(d).count();
}

/// Convert a duration to fractional seconds (for reporting).
template <class Rep, class Period>
double to_sec(std::chrono::duration<Rep, Period> d) noexcept {
  return std::chrono::duration<double>(d).count();
}

/// A restartable stopwatch around the steady clock.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(now()) {}

  /// Restart timing from the current instant.
  void reset() noexcept { start_ = now(); }

  /// Elapsed time since construction or the last reset().
  [[nodiscard]] Nanos elapsed() const noexcept {
    return std::chrono::duration_cast<Nanos>(now() - start_);
  }
  [[nodiscard]] double elapsed_ms() const noexcept { return to_ms(elapsed()); }
  [[nodiscard]] double elapsed_sec() const noexcept { return to_sec(elapsed()); }

 private:
  TimePoint start_;
};

/// Sleep with sub-millisecond accuracy: coarse sleep for the bulk of the
/// interval, then spin for the tail. Used by the simulated work model, where
/// sleep accuracy directly controls experiment fidelity.
void precise_sleep(Nanos d);

/// Burn CPU for approximately `d` by chaining a cheap integer recurrence.
/// Returns a value data-dependent on the loop so the work cannot be elided.
std::uint64_t busy_spin(Nanos d) noexcept;

}  // namespace evmp::common

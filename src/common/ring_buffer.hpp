#pragma once
// Growable double-ended ring buffer: the zero-steady-state-allocation
// replacement for std::deque in every run queue.
//
// std::deque allocates and frees ~512-byte chunks as the head/tail cross
// block boundaries, so a queue oscillating around a chunk edge pays one
// malloc/free pair every few pushes — visible as steady-state allocations
// on the dispatch fast path (bench_overhead's allocation counter). This
// buffer grows geometrically to the high-water mark and then never
// allocates again; capacity is retained for the queue's lifetime, which is
// exactly the executor-run-queue trade-off we want.
//
// Requirements: T must be nothrow-move-constructible (enforced below) —
// growth relocates elements by move and must not be able to throw midway.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace evmp::common {

/// Unbounded (grow-only) ring buffer supporting O(1) push/pop at both ends.
/// Not thread-safe: callers (queue shards, worker deques) hold their own
/// locks.
template <class T>
class RingBuffer {
  static_assert(std::is_nothrow_move_constructible_v<T>,
                "RingBuffer relocates by move on growth; a throwing move "
                "would lose elements");

 public:
  RingBuffer() = default;

  explicit RingBuffer(std::size_t initial_capacity) {
    reserve(initial_capacity);
  }

  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  RingBuffer(RingBuffer&& other) noexcept
      : slots_(std::exchange(other.slots_, nullptr)),
        mask_(std::exchange(other.mask_, 0)),
        head_(std::exchange(other.head_, 0)),
        count_(std::exchange(other.count_, 0)) {}

  RingBuffer& operator=(RingBuffer&& other) noexcept {
    if (this != &other) {
      destroy();
      slots_ = std::exchange(other.slots_, nullptr);
      mask_ = std::exchange(other.mask_, 0);
      head_ = std::exchange(other.head_, 0);
      count_ = std::exchange(other.count_, 0);
    }
    return *this;
  }

  ~RingBuffer() { destroy(); }

  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return slots_ == nullptr ? 0 : mask_ + 1;
  }

  /// Ensure room for at least `n` elements without further allocation.
  void reserve(std::size_t n) {
    if (n > capacity()) grow(n);
  }

  void push_back(T value) {
    if (count_ == capacity()) grow(count_ + 1);
    ::new (static_cast<void*>(slot(head_ + count_))) T(std::move(value));
    ++count_;
  }

  void push_front(T value) {
    if (count_ == capacity()) grow(count_ + 1);
    head_ = (head_ + mask_) & mask_;  // head_ - 1 mod capacity
    ::new (static_cast<void*>(slot(head_))) T(std::move(value));
    ++count_;
  }

  /// Remove and return the oldest element. Precondition: !empty().
  T pop_front() noexcept {
    T* p = slot(head_);
    T value(std::move(*p));
    p->~T();
    head_ = (head_ + 1) & mask_;
    --count_;
    return value;
  }

  /// Remove and return the newest element. Precondition: !empty().
  T pop_back() noexcept {
    T* p = slot(head_ + count_ - 1);
    T value(std::move(*p));
    p->~T();
    --count_;
    return value;
  }

  void clear() noexcept {
    while (count_ > 0) {
      slot(head_)->~T();
      head_ = (head_ + 1) & mask_;
      --count_;
    }
    head_ = 0;
  }

 private:
  [[nodiscard]] T* slot(std::size_t logical) const noexcept {
    return slots_ + (logical & mask_);
  }

  void grow(std::size_t min_capacity) {
    std::size_t cap = capacity() == 0 ? kInitialCapacity : capacity();
    while (cap < min_capacity) cap <<= 1;
    T* fresh = static_cast<T*>(
        ::operator new(cap * sizeof(T), std::align_val_t{alignof(T)}));
    for (std::size_t i = 0; i < count_; ++i) {
      T* p = slot(head_ + i);
      ::new (static_cast<void*>(fresh + i)) T(std::move(*p));
      p->~T();
    }
    if (slots_ != nullptr) {
      ::operator delete(slots_, std::align_val_t{alignof(T)});
    }
    slots_ = fresh;
    mask_ = cap - 1;
    head_ = 0;
  }

  void destroy() noexcept {
    clear();
    if (slots_ != nullptr) {
      ::operator delete(slots_, std::align_val_t{alignof(T)});
      slots_ = nullptr;
      mask_ = 0;
    }
  }

  static constexpr std::size_t kInitialCapacity = 8;

  T* slots_ = nullptr;
  std::size_t mask_ = 0;   ///< capacity - 1 (capacity is a power of two)
  std::size_t head_ = 0;   ///< physical index of the front element
  std::size_t count_ = 0;
};

}  // namespace evmp::common

#pragma once
// Fixed-width table and CSV emitters used by every bench binary so that
// reproduced figures/tables print in a uniform, diffable format.

#include <iosfwd>
#include <string>
#include <vector>

namespace evmp::common {

/// Collects rows of string cells and prints them as an aligned text table.
class TextTable {
 public:
  /// Define the header row; fixes the column count.
  void set_header(std::vector<std::string> cols);

  /// Append a data row. Rows shorter than the header are right-padded.
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment; numeric-looking cells right-align.
  void print(std::ostream& os) const;

  /// Render as CSV (header first).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (default 2 decimal places).
std::string fmt(double v, int precision = 2);

/// Write a TextTable to a CSV file under the given path, creating parent
/// directories if needed. Returns false on I/O failure.
bool write_csv(const TextTable& table, const std::string& path);

}  // namespace evmp::common

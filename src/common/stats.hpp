#pragma once
// Measurement accumulators used by every benchmark harness: online
// mean/variance, exact percentile samples, and a log-bucketed latency
// histogram for cheap concurrent recording.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace evmp::common {

/// Welford's online mean/variance accumulator. Single-writer.
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores every sample and answers exact percentile queries.
/// Single-writer; merge before querying from other threads.
class PercentileSampler {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void merge(const PercentileSampler& other);

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] double mean() const noexcept;
  /// Exact percentile by nearest-rank with linear interpolation; q in [0,1].
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double median() const { return percentile(0.5); }
  [[nodiscard]] double p99() const { return percentile(0.99); }
  [[nodiscard]] double max() const { return percentile(1.0); }

  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }
  void clear() noexcept { samples_.clear(); sorted_ = true; }

 private:
  void ensure_sorted() const;
  std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// The latency quantiles every harness reports, in nanoseconds.
struct LatencyQuantiles {
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
  std::uint64_t max = 0;
  double mean_ns = 0.0;
};

/// Copyable point-in-time copy of a LatencyHistogram (the histogram itself
/// holds atomics and cannot be copied). Snapshots merge exactly —
/// bucket-wise addition loses nothing — so per-thread histograms can be
/// combined before querying, and quantiles interpolate within the landing
/// bucket instead of rounding to its midpoint.
class HistogramSnapshot {
 public:
  HistogramSnapshot() = default;

  [[nodiscard]] std::uint64_t total_count() const noexcept { return n_; }
  [[nodiscard]] double mean_ns() const noexcept;
  /// Percentile (ns) with linear interpolation inside the landing bucket;
  /// q in [0,1]. Returns 0 if empty.
  [[nodiscard]] std::uint64_t percentile(double q) const noexcept;
  /// p50/p90/p99/p999/max/mean in one pass over the buckets.
  [[nodiscard]] LatencyQuantiles quantiles() const noexcept;

  /// Exact bucket-wise merge (associative and commutative).
  void merge(const HistogramSnapshot& other) noexcept;

 private:
  friend class LatencyHistogram;
  static constexpr int kSubBits = 3;               // 8 sub-buckets
  static constexpr int kBuckets = 64 << kSubBits;  // covers full u64 range

  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t sum_ = 0;
  std::uint64_t n_ = 0;
};

/// Thread-safe log-bucketed histogram of nanosecond latencies.
/// Buckets are [2^k, 2^(k+1)) with 8 sub-buckets each (HDR-style), giving
/// <= 12.5% relative error — enough for response-time distributions while
/// letting any number of threads record concurrently without locks.
class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Record one latency measurement in nanoseconds. Wait-free.
  void record(std::uint64_t ns) noexcept;

  [[nodiscard]] std::uint64_t total_count() const noexcept;
  /// Approximate percentile (ns); q in [0,1]. Returns 0 if empty.
  [[nodiscard]] std::uint64_t percentile(double q) const noexcept;
  [[nodiscard]] double mean_ns() const noexcept;

  /// Copyable point-in-time copy (quiescent snapshots are exact; a
  /// snapshot taken while writers race is a consistent-enough view for
  /// reporting, same contract as the counters themselves).
  [[nodiscard]] HistogramSnapshot snapshot() const noexcept;

  /// Fold another histogram's counts into this one (bucket-wise; exact).
  void merge(const LatencyHistogram& other) noexcept;

  /// Render a compact human-readable summary line (count/mean/p50/p99/max).
  [[nodiscard]] std::string summary() const;

  void reset() noexcept;

 private:
  friend class HistogramSnapshot;
  static constexpr int kSubBits = HistogramSnapshot::kSubBits;
  static constexpr int kBuckets = HistogramSnapshot::kBuckets;
  static std::size_t bucket_of(std::uint64_t ns) noexcept;
  static std::uint64_t bucket_midpoint(std::size_t b) noexcept;
  /// Inclusive value range covered by bucket `b` ([lo, hi]).
  static void bucket_bounds(std::size_t b, std::uint64_t* lo,
                            std::uint64_t* hi) noexcept;

  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> n_{0};
};

}  // namespace evmp::common

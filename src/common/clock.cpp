#include "common/clock.hpp"

#include <thread>

namespace evmp::common {

void precise_sleep(Nanos d) {
  if (d <= Nanos{0}) return;
  const TimePoint deadline = now() + d;
  // Leave ~200us of slack for the OS timer, then spin out the remainder.
  constexpr Nanos kSlack{200'000};
  if (d > kSlack) {
    std::this_thread::sleep_for(d - kSlack);
  }
  while (now() < deadline) {
    // A yield keeps the single-core container schedulable while we trim
    // the tail of the interval.
    std::this_thread::yield();
  }
}

std::uint64_t busy_spin(Nanos d) noexcept {
  const TimePoint deadline = now() + d;
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  do {
    // A short burst between clock reads keeps clock overhead negligible.
    for (int i = 0; i < 64; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
  } while (now() < deadline);
  return x;
}

}  // namespace evmp::common

#include "common/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace evmp::common {

std::optional<std::string> env_string(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr) return std::nullopt;
  return std::string(v);
}

std::optional<long> env_long(const char* name) {
  auto s = env_string(name);
  if (!s) return std::nullopt;
  char* end = nullptr;
  const long v = std::strtol(s->c_str(), &end, 10);
  if (end == s->c_str() || *end != '\0') return std::nullopt;
  return v;
}

std::optional<bool> env_bool(const char* name) {
  auto s = env_string(name);
  if (!s) return std::nullopt;
  std::string lower = *s;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "1" || lower == "true" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "0" || lower == "false" || lower == "no" || lower == "off") {
    return false;
  }
  return std::nullopt;
}

}  // namespace evmp::common

#pragma once
// Small synchronisation helpers layered over <mutex>/<condition_variable>.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace evmp::common {

/// A resettable countdown latch (std::latch cannot be reused, which the
/// benchmark harnesses need between rounds).
class CountdownLatch {
 public:
  explicit CountdownLatch(std::size_t count) : count_(count) {}

  /// Decrement; wakes waiters when the count reaches zero.
  void count_down() {
    std::scoped_lock lk(mu_);
    if (count_ > 0 && --count_ == 0) cv_.notify_all();
  }

  /// Block until the count reaches zero.
  void wait() {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return count_ == 0; });
  }

  /// Block until zero or timeout; returns true if the latch opened.
  template <class Rep, class Period>
  bool wait_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lk(mu_);
    return cv_.wait_for(lk, timeout, [&] { return count_ == 0; });
  }

  /// Re-arm with a new count. Callers must ensure no concurrent waiters.
  void reset(std::size_t count) {
    std::scoped_lock lk(mu_);
    count_ = count;
  }

  [[nodiscard]] std::size_t pending() const {
    std::scoped_lock lk(mu_);
    return count_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t count_;
};

/// Counting semaphore with runtime-settable capacity (std::counting_semaphore
/// fixes its ceiling at compile time). Used by the simulated work model to
/// model a machine with K cores.
class Semaphore {
 public:
  explicit Semaphore(std::size_t permits) : permits_(permits) {}

  /// Block until a permit is available, then take it.
  void acquire() {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return permits_ > 0; });
    --permits_;
  }

  /// Return a permit. Notifies under the lock so the semaphore may be
  /// destroyed/replaced as soon as a waiter can observe the permit.
  void release() {
    std::scoped_lock lk(mu_);
    ++permits_;
    cv_.notify_one();
  }

  [[nodiscard]] std::size_t available() const {
    std::scoped_lock lk(mu_);
    return permits_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t permits_;
};

/// RAII permit holder.
class SemaphoreGuard {
 public:
  explicit SemaphoreGuard(Semaphore& sem) : sem_(sem) { sem_.acquire(); }
  ~SemaphoreGuard() { sem_.release(); }
  SemaphoreGuard(const SemaphoreGuard&) = delete;
  SemaphoreGuard& operator=(const SemaphoreGuard&) = delete;

 private:
  Semaphore& sem_;
};

/// Manual-reset event: set() releases all current and future waiters until
/// reset(). Used to gate benchmark phases.
class ManualResetEvent {
 public:
  void set() {
    std::scoped_lock lk(mu_);
    set_ = true;
    cv_.notify_all();  // under the lock: destruction-safe wakeup
  }

  void reset() {
    std::scoped_lock lk(mu_);
    set_ = false;
  }

  void wait() {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return set_; });
  }

  [[nodiscard]] bool is_set() const {
    std::scoped_lock lk(mu_);
    return set_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool set_ = false;
};

}  // namespace evmp::common

#include "common/rng.hpp"

namespace evmp::common {

double Xoshiro256::next_gaussian() noexcept {
  // Box-Muller transform on two fresh uniforms.
  double u1;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  return r * std::cos(kTwoPi * u2);
}

}  // namespace evmp::common

#pragma once
// Lock-free Chase–Lev work-stealing deque (Chase & Lev, SPAA'05), with the
// C11/C++11 memory orderings of Lê, Pop, Cohen & Zappa Nardelli, "Correct
// and Efficient Work-Stealing for Weak Memory Models" (PPoPP'13).
//
// One *owner* thread pushes and pops at the bottom (LIFO — hot tasks stay
// cache-warm); any number of *thief* threads steal from the top (FIFO) by
// CAS-ing `top`. The owner's push/pop are wait-free except when growing;
// steals are lock-free (a failed CAS means another thief or the owner won
// the element, never a blocked lock).
//
// Why this replaces the mutex deque in WorkStealingExecutor: every owner
// pop there took an uncontended-but-real lock (and a cache-line ping when a
// thief probed the same deque), and each idle rescan serialised on N locks.
// Here the owner's common case is two relaxed loads, one release store and
// one seq_cst fence; a thief pays one seq_cst CAS per stolen task.
//
// The circular array grows geometrically and never shrinks. Retired arrays
// are parked on an intrusive list owned by the deque and freed only at
// destruction — the ObjectPool idiom (slabs stay registered and reachable,
// nothing is freed mid-life) applied to buffers: a thief that loaded the
// old array pointer just before a grow may still read slots from it, so
// the memory must outlive every in-flight steal, and keeping it until the
// deque dies is the zero-coordination way to guarantee that. Total retired
// memory is bounded by one doubling chain (< current capacity), and once
// the deque has grown to its high-water mark the steady state allocates
// nothing — the property bench_steal_throughput --alloc-check enforces.
//
// Memory-ordering argument (DESIGN.md §9 walks the full proof sketch):
//  * push: write the slot (relaxed), then publish `bottom+1` with a
//    release store. A thief whose acquire load of `bottom` covers the
//    slot's index also observes the slot write — and the payload behind
//    it. Every owner store to `bottom` is release (not just pushes) so
//    the edge never depends on C++20's narrowed release sequences, and
//    so the protocol is visible to ThreadSanitizer, which does not model
//    atomic_thread_fence (the PPoPP'13 relaxed-store+fence form is
//    equivalent on hardware but opaque to the race detector).
//  * pop: decrement bottom (release), seq_cst fence, read top. The fence
//    pairs with the thief's fence so owner and thief cannot both miss each
//    other on the last element; the final element is arbitrated by the
//    same CAS on `top` the thieves use.
//  * steal: read top (acquire), seq_cst fence, read bottom (acquire); if
//    non-empty, read the slot, then CAS top (seq_cst). The CAS only
//    succeeds if no other thief (and not the owner's last-element pop)
//    claimed index `top` first, so every element is surrendered exactly
//    once. The slot read precedes the CAS, which is why slots must be
//    atomic (a racing owner push to a recycled index is a benign data race
//    on the value only when the CAS subsequently fails).
//
// T must be trivially copyable and lock-free as std::atomic<T> — in
// practice a pointer (the executor stores pooled TaskNode*). Storing the
// payload out-of-line is what makes the racy slot reads well-defined.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace evmp::common {

template <class T>
class ChaseLevDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "Chase–Lev slots are read racily before the claiming CAS; "
                "only trivially copyable payloads (store a pointer) are "
                "well-defined");
  static_assert(std::atomic<T>::is_always_lock_free,
                "slot reads/writes must be lock-free atomics");

 public:
  /// Steal outcome: thieves distinguish "nothing there" from "lost a race"
  /// so an executor scan can keep probing a contended victim.
  enum class Steal { kEmpty, kAbort, kSuccess };

  explicit ChaseLevDeque(std::size_t initial_capacity = kInitialCapacity)
      : buffer_(Buffer::create(round_up(initial_capacity))) {}

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  ~ChaseLevDeque() {
    Buffer* b = buffer_.load(std::memory_order_relaxed);
    while (b != nullptr) {
      Buffer* prev = b->retired_prev;
      Buffer::destroy(b);
      b = prev;
    }
  }

  /// Owner only: push at the bottom. Grows (amortised O(1)) when full.
  void push_bottom(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(buf->capacity) - 1) {
      buf = grow(buf, t, b);
    }
    buf->slot(b).store(value, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only: pop the newest element (LIFO). False when empty.
  bool pop_bottom(T& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_release);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t <= b) {
      out = buf->slot(b).load(std::memory_order_relaxed);
      if (t == b) {
        // Last element: race the thieves for it via the same CAS they use.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          bottom_.store(b + 1, std::memory_order_release);
          return false;  // a thief got it
        }
        bottom_.store(b + 1, std::memory_order_release);
      }
      return true;
    }
    bottom_.store(b + 1, std::memory_order_release);  // was empty
    return false;
  }

  /// Any thread: steal the oldest element (FIFO).
  Steal steal_top(T& out) {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return Steal::kEmpty;
    // Read the array pointer after the fence: a grow that completed before
    // `bottom` was (re)read published its copy of index t, and a stale
    // pointer still holds the same value at t (grow copies [top, bottom)).
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    out = buf->slot(t).load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return Steal::kAbort;  // lost the race; element belongs to someone else
    }
    return Steal::kSuccess;
  }

  /// Approximate occupancy (exact only when quiescent).
  [[nodiscard]] std::size_t size() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Current circular-array capacity (test/bench observability).
  [[nodiscard]] std::size_t capacity() const noexcept {
    return buffer_.load(std::memory_order_relaxed)->capacity;
  }

  /// Buffers retired by growth and parked until destruction.
  [[nodiscard]] std::size_t retired_buffers() const noexcept {
    std::size_t n = 0;
    for (Buffer* b = buffer_.load(std::memory_order_relaxed)->retired_prev;
         b != nullptr; b = b->retired_prev) {
      ++n;
    }
    return n;
  }

 private:
  /// Circular array of atomic slots, allocated in one block. `retired_prev`
  /// chains every predecessor array (never freed before the deque — see the
  /// header comment).
  struct Buffer {
    std::size_t capacity;
    std::size_t mask;
    Buffer* retired_prev = nullptr;

    std::atomic<T>& slot(std::int64_t index) noexcept {
      return slots()[static_cast<std::size_t>(index) & mask];
    }

    std::atomic<T>* slots() noexcept {
      return reinterpret_cast<std::atomic<T>*>(this + 1);
    }

    static Buffer* create(std::size_t capacity) {
      void* raw = ::operator new(
          sizeof(Buffer) + capacity * sizeof(std::atomic<T>),
          std::align_val_t{alignof(Buffer)});
      Buffer* b = new (raw) Buffer{capacity, capacity - 1, nullptr};
      // Slots are written before they become reachable (top..bottom
      // protocol), but value-initialise anyway so a stale racy read during
      // grow never observes uninitialised memory.
      for (std::size_t i = 0; i < capacity; ++i) {
        new (&b->slots()[i]) std::atomic<T>();
      }
      return b;
    }

    static void destroy(Buffer* b) noexcept {
      b->~Buffer();
      ::operator delete(b, std::align_val_t{alignof(Buffer)});
    }
  };

  /// Owner only: double the array, copying live indices [t, b). The old
  /// array is retired (chained, not freed) because concurrent thieves may
  /// still hold its pointer.
  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    Buffer* fresh = Buffer::create(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) {
      fresh->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    }
    fresh->retired_prev = old;
    buffer_.store(fresh, std::memory_order_release);
    return fresh;
  }

  static std::size_t round_up(std::size_t n) noexcept {
    std::size_t cap = kInitialCapacity;
    while (cap < n) cap <<= 1;
    return cap;
  }

  static constexpr std::size_t kInitialCapacity = 64;

  // Owner-written indices on separate cache lines from each other and from
  // the thief-CASed top, so steals do not invalidate the owner's line.
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Buffer*> buffer_;
};

}  // namespace evmp::common

#pragma once
// Sharded MPMC run queue: the scalability successor to MpmcQueue.
//
// MpmcQueue funnels every producer and consumer through one mutex+condvar;
// under many-producer bursts (the §V.B virtual-user swarm) that single lock
// is the throughput ceiling of every executor built on it. ShardedMpmcQueue
// stripes the FIFO across N independently locked shards:
//
//  * push() hashes the producer thread to a home shard and takes only that
//    shard's lock — disjoint producers never contend;
//  * push_batch() admits a whole burst under ONE shard lock and ONE notify,
//    amortising the synchronisation cost across the batch;
//  * pop() serves a consumer from its home shard first and work-pulls from
//    sibling shards when the home shard is dry, so no item is stranded;
//  * close() preserves MpmcQueue's shutdown contract exactly: pending items
//    remain poppable, new pushes are refused, blocked consumers wake once
//    the queue has drained. close() latches the flag while holding every
//    shard lock, which linearises it against all in-flight pushes.
//
// Ordering: FIFO per shard — hence FIFO per producer thread — but not
// globally FIFO across producers (MpmcQueue was not usefully FIFO across
// racing producers either: the interleaving was arbitrary).
//
// Wakeups avoid the shared condition variable entirely while consumers are
// busy: a push only touches the cv mutex when the sleeper count says someone
// is actually parked, so uncontended producers stay shard-local. The
// generation/sleeper handshake below (seq_cst on both sides) is the classic
// store-buffer pairing: a consumer registers as a sleeper before re-checking
// the generation, a producer bumps the generation before checking sleepers —
// at least one side always observes the other, so no wakeup is lost.
//
// Each queue keeps relaxed-atomic counters (pushes, batches, pops, steals,
// lock collisions, max depth) so executors can expose their fan-in behaviour
// through common::tracing; reading them costs nothing on the hot path.
//
// Lifetime caveat (differs from MpmcQueue): push() touches queue members
// after its item became poppable, so a producer must ensure the queue
// outlives its push() call. Every executor in this repo guarantees that by
// joining its workers before destroying the queue; posting to an executor
// racing with its destruction was already undefined before this change.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "common/ring_buffer.hpp"

#if defined(__linux__)
#include <sched.h>
#endif

namespace evmp::common {

/// Snapshot of a sharded queue's counters (values are monotone except
/// max_depth, which is a high-water mark; all are approximate under races
/// by design — they are observability, not synchronisation).
struct ShardedQueueStats {
  std::uint64_t pushes = 0;        ///< single-item push() calls accepted
  std::uint64_t batch_pushes = 0;  ///< push_batch() calls accepted
  std::uint64_t batch_items = 0;   ///< items admitted via push_batch()
  std::uint64_t pops = 0;          ///< items handed to consumers
  std::uint64_t steals = 0;        ///< pops served from a non-home shard
  std::uint64_t collisions = 0;    ///< pushes that found their shard locked
  std::uint64_t max_depth = 0;     ///< deepest single shard ever observed
  std::uint64_t rejections = 0;    ///< try_push items refused by capacity
};

/// Unbounded MPMC FIFO striped over `num_shards` mutex-protected shards.
/// Drop-in for MpmcQueue where global FIFO across producers is not required
/// (executor run queues). `num_shards` is rounded up to a power of two;
/// 0 selects a default based on the hardware concurrency.
template <class T>
class ShardedMpmcQueue {
 public:
  explicit ShardedMpmcQueue(std::size_t num_shards = 0) {
    if (num_shards == 0) {
      const unsigned hw = std::thread::hardware_concurrency();
      num_shards = hw == 0 ? 1 : hw;
    }
    std::size_t rounded = 1;
    while (rounded < num_shards && rounded < kMaxShards) rounded <<= 1;
    shards_.reserve(rounded);
    for (std::size_t i = 0; i < rounded; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
    mask_ = rounded - 1;
  }
  ShardedMpmcQueue(const ShardedMpmcQueue&) = delete;
  ShardedMpmcQueue& operator=(const ShardedMpmcQueue&) = delete;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Stable home-shard index for the calling thread (also usable as the
  /// `home` hint for pop()/try_pop()). With CPU-home mode on (EVMP_PIN
  /// executors), the shard follows the CPU the caller runs on instead of
  /// its thread identity, so shard locality tracks processor locality.
  [[nodiscard]] std::size_t home_shard() const noexcept {
    if (cpu_home_.load(std::memory_order_relaxed)) {
#if defined(__linux__)
      const int cpu = sched_getcpu();
      if (cpu >= 0) return static_cast<std::size_t>(cpu) & mask_;
#endif
    }
    return thread_slot() & mask_;
  }

  /// Hash home shards by current CPU (Linux; falls back to thread slots
  /// elsewhere or when sched_getcpu fails). Pair with pinned producers/
  /// consumers so each CPU's traffic stays on its own shard.
  void set_cpu_home(bool on) noexcept {
    cpu_home_.store(on, std::memory_order_relaxed);
  }

  /// Soft bound on the queue's total depth, enforced by try_push /
  /// try_push_batch only (0 = unbounded). Plain push()/push_batch() keep
  /// their must-succeed contract regardless — completion-carrying
  /// dispatches can never be refused, so a join can never deadlock on a
  /// refused continuation. The bound is checked under one shard's lock
  /// against the global size, so concurrent try_pushers into other shards
  /// can overshoot by at most one item each — admission control, not a
  /// hard invariant.
  void set_capacity(std::size_t capacity) noexcept {
    capacity_.store(capacity, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const noexcept {
    return capacity_.load(std::memory_order_relaxed);
  }

  /// Push one item to the producer's home shard. Returns false (drops the
  /// item) if the queue is closed.
  bool push(T item) { return push_to(home_shard(), std::move(item)); }

  /// As push(), but additionally refuses the item (returns false, counts a
  /// rejection) when the queue already holds capacity() items. This is the
  /// backpressure seam: overload callers that can shed use this, callers
  /// carrying completions use push().
  bool try_push(T item) { return try_push_to(home_shard(), std::move(item)); }

  bool try_push_to(std::size_t shard_index, T item) {
    const std::size_t cap = capacity_.load(std::memory_order_relaxed);
    Shard& s = shard(shard_index);
    {
      std::unique_lock lk(s.mu, std::try_to_lock);
      if (!lk.owns_lock()) {
        collisions_.fetch_add(1, std::memory_order_relaxed);
        lk.lock();
      }
      if (closed_.load(std::memory_order_acquire)) return false;
      if (cap != 0 && size_.load(std::memory_order_acquire) >= cap) {
        rejections_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      s.items.push_back(std::move(item));
      note_depth(s.items.size());
      size_.fetch_add(1, std::memory_order_release);
      pushes_.fetch_add(1, std::memory_order_relaxed);
    }
    wake(false);
    return true;
  }

  /// All-or-nothing bounded batch admission: either every item fits under
  /// capacity() (returns items.size()) or none is admitted (returns 0 and
  /// counts items.size() rejections when refused by the bound).
  std::size_t try_push_batch(std::span<T> items) {
    if (items.empty()) return 0;
    const std::size_t cap = capacity_.load(std::memory_order_relaxed);
    Shard& s = shard(home_shard());
    {
      std::unique_lock lk(s.mu, std::try_to_lock);
      if (!lk.owns_lock()) {
        collisions_.fetch_add(1, std::memory_order_relaxed);
        lk.lock();
      }
      if (closed_.load(std::memory_order_acquire)) return 0;
      if (cap != 0 && size_.load(std::memory_order_acquire) + items.size() >
                          cap) {
        rejections_.fetch_add(items.size(), std::memory_order_relaxed);
        return 0;
      }
      for (T& item : items) {
        s.items.push_back(std::move(item));
      }
      note_depth(s.items.size());
      size_.fetch_add(items.size(), std::memory_order_release);
      batch_pushes_.fetch_add(1, std::memory_order_relaxed);
      batch_items_.fetch_add(items.size(), std::memory_order_relaxed);
    }
    wake(true);
    return items.size();
  }

  /// Push to an explicit shard (tests; executors with indexed workers).
  bool push_to(std::size_t shard_index, T item) {
    Shard& s = shard(shard_index);
    {
      std::unique_lock lk(s.mu, std::try_to_lock);
      if (!lk.owns_lock()) {
        collisions_.fetch_add(1, std::memory_order_relaxed);
        lk.lock();
      }
      if (closed_.load(std::memory_order_acquire)) return false;
      s.items.push_back(std::move(item));
      note_depth(s.items.size());
      size_.fetch_add(1, std::memory_order_release);
      pushes_.fetch_add(1, std::memory_order_relaxed);
    }
    wake(false);
    return true;
  }

  /// Admit a whole batch under one shard lock and one notification. The
  /// batch is atomic with respect to close(): either every item is admitted
  /// (returns items.size()) or the queue was closed and none are (returns
  /// 0, items are left in a moved-from state only when admitted).
  /// Items keep their relative order (single shard ⇒ FIFO within batch).
  std::size_t push_batch(std::span<T> items) {
    return push_batch_to(home_shard(), items);
  }

  std::size_t push_batch_to(std::size_t shard_index, std::span<T> items) {
    if (items.empty()) return 0;
    Shard& s = shard(shard_index);
    {
      std::unique_lock lk(s.mu, std::try_to_lock);
      if (!lk.owns_lock()) {
        collisions_.fetch_add(1, std::memory_order_relaxed);
        lk.lock();
      }
      if (closed_.load(std::memory_order_acquire)) return 0;
      for (T& item : items) {
        s.items.push_back(std::move(item));
      }
      note_depth(s.items.size());
      size_.fetch_add(items.size(), std::memory_order_release);
      batch_pushes_.fetch_add(1, std::memory_order_relaxed);
      batch_items_.fetch_add(items.size(), std::memory_order_relaxed);
    }
    wake(true);  // a batch may satisfy many sleeping consumers
    return items.size();
  }

  /// Block until an item is available or the queue is closed and drained.
  /// Returns nullopt only on closed-and-empty. `home` biases which shard is
  /// scanned first (defaults to the calling thread's home shard).
  std::optional<T> pop() { return pop(home_shard()); }

  std::optional<T> pop(std::size_t home) {
    // Yield-scan briefly before parking: in back-to-back dispatch the next
    // item typically lands within a scheduler quantum of the previous pop.
    // Catching it here keeps this consumer off the sleeper list, which in
    // turn keeps the producer's wake() on its syscall-free path — in steady
    // state neither side touches the condvar or its mutex.
    for (int i = 0; i < kSpinScans; ++i) {
      if (auto item = scan(home)) return item;
      if (closed_.load(std::memory_order_acquire)) break;
      std::this_thread::yield();
    }
    for (;;) {
      const std::uint64_t gen = gen_.load();  // seq_cst: pairs with wake()
      if (auto item = scan(home)) return item;
      if (closed_.load(std::memory_order_acquire)) {
        // All pre-close pushes are visible once closed_ reads true (the
        // flag is latched while holding every shard lock), so one more
        // full scan decides drained-ness.
        if (auto item = scan(home)) return item;
        return std::nullopt;
      }
      SleeperGuard sleeper(sleepers_);
      std::unique_lock lk(cv_mu_);
      cv_.wait(lk, [&] {
        return closed_.load(std::memory_order_relaxed) ||
               gen_.load(std::memory_order_relaxed) != gen;
      });
    }
  }

  /// Non-blocking pop; nullopt when every shard is empty.
  std::optional<T> try_pop() { return try_pop(home_shard()); }
  std::optional<T> try_pop(std::size_t home) { return scan(home); }

  /// Block up to `timeout`; nullopt on timeout or closed-and-empty.
  template <class Rep, class Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    const std::size_t home = home_shard();
    for (;;) {
      const std::uint64_t gen = gen_.load();  // seq_cst: pairs with wake()
      if (auto item = scan(home)) return item;
      if (closed_.load(std::memory_order_acquire)) {
        if (auto item = scan(home)) return item;
        return std::nullopt;
      }
      SleeperGuard sleeper(sleepers_);
      std::unique_lock lk(cv_mu_);
      if (!cv_.wait_until(lk, deadline, [&] {
            return closed_.load(std::memory_order_relaxed) ||
                   gen_.load(std::memory_order_relaxed) != gen;
          })) {
        return std::nullopt;
      }
    }
  }

  /// Close the queue: pending items remain poppable, new pushes (and whole
  /// batches) are refused, blocked consumers wake once the queue drains.
  void close() {
    // Latch the flag while holding every shard lock: any concurrent push
    // either completed before we got its shard (item visible to the final
    // drain scan) or observes closed_ and is refused. This is the sharded
    // equivalent of MpmcQueue setting closed_ under its one mutex.
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(shards_.size());
    for (auto& s : shards_) locks.emplace_back(s->mu);
    closed_.store(true, std::memory_order_release);
    locks.clear();
    wake(true);
  }

  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }

  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  [[nodiscard]] ShardedQueueStats stats() const noexcept {
    ShardedQueueStats s;
    s.pushes = pushes_.load(std::memory_order_relaxed);
    s.batch_pushes = batch_pushes_.load(std::memory_order_relaxed);
    s.batch_items = batch_items_.load(std::memory_order_relaxed);
    s.pops = pops_.load(std::memory_order_relaxed);
    s.steals = steals_.load(std::memory_order_relaxed);
    s.collisions = collisions_.load(std::memory_order_relaxed);
    s.max_depth = max_depth_.load(std::memory_order_relaxed);
    s.rejections = rejections_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  static constexpr std::size_t kMaxShards = 64;
  /// Bounded pre-park yield-scan attempts in pop(). Small enough that an
  /// idle consumer reaches the condvar within ~a few scheduler quanta.
  static constexpr int kSpinScans = 32;

  struct Shard {
    std::mutex mu;
    // RingBuffer, not std::deque: a deque allocates/frees ~512 B chunks as
    // the queue oscillates around a chunk edge, which shows up as
    // steady-state allocations on the dispatch fast path.
    RingBuffer<T> items;
  };

  Shard& shard(std::size_t index) noexcept {
    return *shards_[index & mask_];
  }

  /// Small stable per-thread slot, assigned round-robin on first use so
  /// concurrent producers spread evenly over shards regardless of how the
  /// OS allocates thread ids.
  static std::size_t thread_slot() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local std::size_t slot =
        next.fetch_add(1, std::memory_order_relaxed);
    return slot;
  }

  /// One sweep over all shards starting at `home`; takes at most one item.
  std::optional<T> scan(std::size_t home) {
    const std::size_t n = shards_.size();
    for (std::size_t k = 0; k < n; ++k) {
      Shard& s = shard(home + k);
      std::scoped_lock lk(s.mu);
      if (s.items.empty()) continue;
      T item = s.items.pop_front();
      size_.fetch_sub(1, std::memory_order_release);
      pops_.fetch_add(1, std::memory_order_relaxed);
      if (k != 0) steals_.fetch_add(1, std::memory_order_relaxed);
      return item;
    }
    return std::nullopt;
  }

  void note_depth(std::size_t depth) noexcept {
    // Benign cross-shard race: this is a high-water mark for reporting.
    if (depth > max_depth_.load(std::memory_order_relaxed)) {
      max_depth_.store(depth, std::memory_order_relaxed);
    }
  }

  /// RAII sleeper registration for the store-buffer handshake with wake().
  class SleeperGuard {
   public:
    explicit SleeperGuard(std::atomic<std::size_t>& count) : count_(count) {
      count_.fetch_add(1);  // seq_cst
    }
    ~SleeperGuard() { count_.fetch_sub(1); }
    SleeperGuard(const SleeperGuard&) = delete;
    SleeperGuard& operator=(const SleeperGuard&) = delete;

   private:
    std::atomic<std::size_t>& count_;
  };

  /// Bump the wake generation; notify only when a consumer is parked.
  /// Seq_cst ordering (gen bump, then sleeper read) against pop()'s
  /// (sleeper registration, then gen re-read) guarantees at least one side
  /// sees the other: either the consumer's wait predicate observes the new
  /// generation and never sleeps, or this producer observes the sleeper and
  /// notifies. The notification itself is taken under cv_mu_, which a
  /// parked consumer holds until it is genuinely waiting — so the notify
  /// cannot fire into the gap between predicate check and sleep.
  void wake(bool all) {
    gen_.fetch_add(1);  // seq_cst
    if (sleepers_.load() == 0) return;
    std::scoped_lock lk(cv_mu_);
    if (all) {
      cv_.notify_all();
    } else {
      cv_.notify_one();
    }
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t mask_ = 0;

  std::mutex cv_mu_;
  std::condition_variable cv_;
  std::atomic<std::uint64_t> gen_{0};
  std::atomic<std::size_t> sleepers_{0};
  std::atomic<bool> closed_{false};
  std::atomic<bool> cpu_home_{false};
  std::atomic<std::size_t> size_{0};
  std::atomic<std::size_t> capacity_{0};

  std::atomic<std::uint64_t> pushes_{0};
  std::atomic<std::uint64_t> batch_pushes_{0};
  std::atomic<std::uint64_t> batch_items_{0};
  std::atomic<std::uint64_t> pops_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> collisions_{0};
  std::atomic<std::uint64_t> max_depth_{0};
  std::atomic<std::uint64_t> rejections_{0};
};

}  // namespace evmp::common

#pragma once
// Thread-safe leveled logging. Off by default above WARN so benchmark output
// stays clean; tests can raise verbosity via EVMP_LOG_LEVEL.

#include <mutex>
#include <sstream>
#include <string>

namespace evmp::common {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are discarded.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Emit one log line (thread-safe, single write to stderr).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <class T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace evmp::common

#define EVMP_LOG(level)                                              \
  if (static_cast<int>(level) < static_cast<int>(::evmp::common::log_level())) \
    ;                                                                \
  else                                                               \
    ::evmp::common::detail::LogLine(level)

#define EVMP_LOG_DEBUG EVMP_LOG(::evmp::common::LogLevel::kDebug)
#define EVMP_LOG_INFO EVMP_LOG(::evmp::common::LogLevel::kInfo)
#define EVMP_LOG_WARN EVMP_LOG(::evmp::common::LogLevel::kWarn)
#define EVMP_LOG_ERROR EVMP_LOG(::evmp::common::LogLevel::kError)

#pragma once
// Environment-variable helpers: EventMP's internal control variables (ICVs)
// can be seeded from the environment, mirroring OMP_* conventions.

#include <optional>
#include <string>

namespace evmp::common {

/// Raw getenv as optional<string>.
std::optional<std::string> env_string(const char* name);

/// Parse an integer environment variable; nullopt if unset or malformed.
std::optional<long> env_long(const char* name);

/// Parse a boolean ("1/true/yes/on" vs "0/false/no/off", case-insensitive).
std::optional<bool> env_bool(const char* name);

}  // namespace evmp::common

#include "executor/simulated_device.hpp"

namespace evmp::exec {

SimulatedDeviceExecutor::SimulatedDeviceExecutor(std::string device_name,
                                                 int device_id, Config cfg)
    : SerialExecutor(std::move(device_name)), device_id_(device_id),
      cfg_(cfg) {}

void SimulatedDeviceExecutor::sleep_for_bytes(std::uint64_t bytes) const {
  const double secs = static_cast<double>(bytes) / cfg_.bandwidth_bytes_per_sec;
  common::precise_sleep(common::Nanos{static_cast<std::int64_t>(secs * 1e9)});
}

void SimulatedDeviceExecutor::transfer_to_device(std::uint64_t bytes) {
  sleep_for_bytes(bytes);
  to_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

void SimulatedDeviceExecutor::transfer_from_device(std::uint64_t bytes) {
  sleep_for_bytes(bytes);
  from_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

void SimulatedDeviceExecutor::execute(Task& task) {
  common::precise_sleep(cfg_.launch_latency);
  launches_.fetch_add(1, std::memory_order_relaxed);
  SerialExecutor::execute(task);
}

}  // namespace evmp::exec

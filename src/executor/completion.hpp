#pragma once
// Completion tracking for asynchronously submitted blocks.
//
// A CompletionState is the rendezvous between a submitted target block and
// any thread that later joins it (the paper's `default` wait, `await`
// logical barrier, and `wait(name-tag)` all observe one of these).
//
// Perf shape (the dispatch fast path): the seed used mutex+condvar per
// state and make_shared per directive — two kernel-sleep primitives and a
// control-block allocation on every submission. Now the state machine is a
// single atomic word (spin-then-park via C++20 atomic wait/notify, i.e. a
// futex on Linux), the exception slot is published with release/acquire
// ordering, and states are recycled through a thread-cached pool
// (common::ObjectPool) behind an intrusive refcounted handle. A state
// returns to the pool only when its last reference drops, so a pooled
// state can never be recycled under a live waiter: every waiter reaches
// the state through a reference-holding handle.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <thread>
#include <utility>

#include "common/object_pool.hpp"

namespace evmp::exec {

class CompletionRef;

/// Shared state describing one in-flight asynchronous block.
class CompletionState {
 public:
  CompletionState() = default;
  CompletionState(const CompletionState&) = delete;
  CompletionState& operator=(const CompletionState&) = delete;

  /// Acquire a recycled (or fresh) state from the pool, re-armed to
  /// pending, wrapped in a reference-holding handle.
  static CompletionRef make();

  /// Mark successful completion and wake all waiters.
  void set_done() {
    phase_.store(kDone, std::memory_order_release);
    phase_.notify_all();
  }

  /// Mark failed completion; the exception is rethrown at join points.
  void set_exception(std::exception_ptr ep) {
    error_ = std::move(ep);  // published by the release store below
    phase_.store(kError, std::memory_order_release);
    phase_.notify_all();
  }

  [[nodiscard]] bool done() const {
    return phase_.load(std::memory_order_acquire) != kPending;
  }

  [[nodiscard]] bool failed() const {
    return phase_.load(std::memory_order_acquire) == kError;
  }

  /// Block until completion; rethrows a stored exception. Every joining
  /// thread observes the same exception (OpenMP has a single join point,
  /// but name_as tags may legally be waited on more than once).
  void wait() {
    std::uint32_t phase = spin_for_completion();
    while (phase == kPending) {
      phase_.wait(kPending, std::memory_order_acquire);
      phase = phase_.load(std::memory_order_acquire);
    }
    if (phase == kError) std::rethrow_exception(error_);
  }

  /// Block up to `timeout`; true when complete (rethrows stored
  /// exception). Non-template on purpose: one instantiation serves every
  /// caller of the hot path (the await pump passes its quantum here).
  /// Timed parking is a bounded spin plus escalating naps — atomic waits
  /// have no timed form, and the await help-pump wants a lock-free poll.
  bool wait_for(std::chrono::nanoseconds timeout) {
    std::uint32_t phase = spin_for_completion();
    if (phase == kPending) {
      const auto deadline = std::chrono::steady_clock::now() + timeout;
      std::chrono::nanoseconds nap{1000};
      for (;;) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) return false;
        std::this_thread::sleep_for(std::min(
            nap, std::chrono::duration_cast<std::chrono::nanoseconds>(
                     deadline - now)));
        nap = std::min(nap * 2, std::chrono::nanoseconds{100000});
        phase = phase_.load(std::memory_order_acquire);
        if (phase != kPending) break;
      }
    }
    if (phase == kError) std::rethrow_exception(error_);
    return true;
  }

  /// Forwarding shim kept for callers with arbitrary duration types.
  template <class Rep, class Period>
  bool wait_for(std::chrono::duration<Rep, Period> timeout) {
    return wait_for(
        std::chrono::duration_cast<std::chrono::nanoseconds>(timeout));
  }

  /// Rethrow the stored exception, if any (call only after done()).
  void rethrow_if_error() {
    if (phase_.load(std::memory_order_acquire) == kError) {
      std::rethrow_exception(error_);
    }
  }

  // --- intrusive refcount / pooling (used via CompletionRef) ------------
  void add_ref() noexcept { refs_.fetch_add(1, std::memory_order_relaxed); }

  void release() noexcept {
    if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      if (pooled_) {
        error_ = nullptr;  // drop the exception now, not at reuse
        common::ObjectPool<CompletionState>::release(this);
      }
    }
  }

  CompletionState* pool_next_ = nullptr;  ///< freelist link (ObjectPool)

 private:
  friend class CompletionRef;

  static constexpr std::uint32_t kPending = 0;
  static constexpr std::uint32_t kDone = 1;
  static constexpr std::uint32_t kError = 2;

  /// Brief bounded spin before parking: target blocks are often shorter
  /// than a futex round trip. Two phases: cheap pause instructions first
  /// (multi-core: catches completions racing this join), then a few
  /// sched_yields (single-core: hands the CPU to the worker so the block
  /// can actually finish) — only then does the caller pay the futex park.
  std::uint32_t spin_for_completion() const noexcept {
    std::uint32_t phase = phase_.load(std::memory_order_acquire);
    if (spin_pauses() > 0) {
      for (int i = 0; i < spin_pauses() && phase == kPending; ++i) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#else
        std::this_thread::yield();
#endif
        phase = phase_.load(std::memory_order_acquire);
      }
    }
    for (int i = 0; i < 16 && phase == kPending; ++i) {
      std::this_thread::yield();
      phase = phase_.load(std::memory_order_acquire);
    }
    return phase;
  }

  /// Pause-spin budget before yielding. Zero on single-core machines: the
  /// completing thread cannot make progress while this one pauses, so
  /// spinning only delays the yield that lets it run.
  static int spin_pauses() noexcept {
    static const int pauses =
        std::thread::hardware_concurrency() > 1 ? 128 : 0;
    return pauses;
  }

  std::atomic<std::uint32_t> phase_{kPending};
  std::atomic<std::uint32_t> refs_{0};
  bool pooled_ = false;
  std::exception_ptr error_;
};

/// Intrusive reference to a pooled CompletionState; copyable, shareable.
/// Dropping the last reference returns the state to the pool.
class CompletionRef {
 public:
  CompletionRef() = default;

  CompletionRef(const CompletionRef& other) noexcept : state_(other.state_) {
    if (state_ != nullptr) state_->add_ref();
  }

  CompletionRef(CompletionRef&& other) noexcept
      : state_(std::exchange(other.state_, nullptr)) {}

  CompletionRef& operator=(const CompletionRef& other) noexcept {
    if (this != &other) {
      CompletionState* old = state_;
      state_ = other.state_;
      if (state_ != nullptr) state_->add_ref();
      if (old != nullptr) old->release();
    }
    return *this;
  }

  CompletionRef& operator=(CompletionRef&& other) noexcept {
    if (this != &other) {
      if (state_ != nullptr) state_->release();
      state_ = std::exchange(other.state_, nullptr);
    }
    return *this;
  }

  ~CompletionRef() {
    if (state_ != nullptr) state_->release();
  }

  [[nodiscard]] CompletionState* get() const noexcept { return state_; }
  CompletionState* operator->() const noexcept { return state_; }
  CompletionState& operator*() const noexcept { return *state_; }
  explicit operator bool() const noexcept { return state_ != nullptr; }

  void reset() noexcept {
    if (state_ != nullptr) {
      state_->release();
      state_ = nullptr;
    }
  }

 private:
  friend class CompletionState;

  /// Adopts one reference already counted on `state`.
  explicit CompletionRef(CompletionState* state) noexcept : state_(state) {}

  CompletionState* state_ = nullptr;
};

inline CompletionRef CompletionState::make() {
  CompletionState* state = common::ObjectPool<CompletionState>::acquire();
  // Re-arm: the pool hands back states whose last use fully completed
  // (refs hit zero), so no thread can observe these writes racing.
  state->pooled_ = true;
  state->error_ = nullptr;
  state->refs_.store(1, std::memory_order_relaxed);
  state->phase_.store(kPending, std::memory_order_relaxed);
  return CompletionRef(state);
}

/// Lightweight handle to a CompletionState; copyable, shareable.
class TaskHandle {
 public:
  TaskHandle() = default;
  explicit TaskHandle(CompletionRef state) : state_(std::move(state)) {}

  /// True if this handle refers to an actual asynchronous submission.
  /// (Inline-executed blocks return an empty handle: they are already done.)
  [[nodiscard]] bool valid() const noexcept { return state_.get() != nullptr; }

  /// True once the block has finished (empty handles count as finished).
  [[nodiscard]] bool done() const { return !state_ || state_->done(); }

  /// True if the block completed by throwing.
  [[nodiscard]] bool failed() const { return state_ && state_->failed(); }

  /// Block until the task completes; rethrows the block's exception.
  void wait() const {
    if (state_) state_->wait();
  }

  template <class Rep, class Period>
  bool wait_for(std::chrono::duration<Rep, Period> timeout) const {
    return !state_ || state_->wait_for(timeout);
  }

  /// Rethrow the block's exception if it failed (call after done()).
  void rethrow_if_error() const {
    if (state_) state_->rethrow_if_error();
  }

  [[nodiscard]] const CompletionRef& state() const noexcept { return state_; }

 private:
  CompletionRef state_;
};

}  // namespace evmp::exec

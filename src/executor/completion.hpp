#pragma once
// Completion tracking for asynchronously submitted blocks.
//
// A CompletionState is the rendezvous between a submitted target block and
// any thread that later joins it (the paper's `default` wait, `await`
// logical barrier, and `wait(name-tag)` all observe one of these).

#include <chrono>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>

namespace evmp::exec {

/// Shared state describing one in-flight asynchronous block.
class CompletionState {
 public:
  /// Mark successful completion and wake all waiters.
  void set_done() {
    {
      std::scoped_lock lk(mu_);
      done_ = true;
    }
    cv_.notify_all();
  }

  /// Mark failed completion; the exception is rethrown at join points.
  void set_exception(std::exception_ptr ep) {
    {
      std::scoped_lock lk(mu_);
      error_ = std::move(ep);
      done_ = true;
    }
    cv_.notify_all();
  }

  [[nodiscard]] bool done() const {
    std::scoped_lock lk(mu_);
    return done_;
  }

  [[nodiscard]] bool failed() const {
    std::scoped_lock lk(mu_);
    return done_ && error_ != nullptr;
  }

  /// Block until completion; rethrows a stored exception. Every joining
  /// thread observes the same exception (OpenMP has a single join point,
  /// but name_as tags may legally be waited on more than once).
  void wait() {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return done_; });
    rethrow_locked(lk);
  }

  /// Block up to `timeout`; true when complete (rethrows stored exception).
  template <class Rep, class Period>
  bool wait_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lk(mu_);
    if (!cv_.wait_for(lk, timeout, [&] { return done_; })) return false;
    rethrow_locked(lk);
    return true;
  }

  /// Rethrow the stored exception, if any (call only after done()).
  void rethrow_if_error() {
    std::unique_lock lk(mu_);
    rethrow_locked(lk);
  }

 private:
  void rethrow_locked(std::unique_lock<std::mutex>& lk) {
    if (error_) {
      const std::exception_ptr ep = error_;
      lk.unlock();  // never throw while holding the lock
      std::rethrow_exception(ep);
    }
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::exception_ptr error_;
};

/// Lightweight handle to a CompletionState; copyable, shareable.
class TaskHandle {
 public:
  TaskHandle() = default;
  explicit TaskHandle(std::shared_ptr<CompletionState> state)
      : state_(std::move(state)) {}

  /// True if this handle refers to an actual asynchronous submission.
  /// (Inline-executed blocks return an empty handle: they are already done.)
  [[nodiscard]] bool valid() const noexcept { return state_ != nullptr; }

  /// True once the block has finished (empty handles count as finished).
  [[nodiscard]] bool done() const { return !state_ || state_->done(); }

  /// True if the block completed by throwing.
  [[nodiscard]] bool failed() const { return state_ && state_->failed(); }

  /// Block until the task completes; rethrows the block's exception.
  void wait() const {
    if (state_) state_->wait();
  }

  template <class Rep, class Period>
  bool wait_for(std::chrono::duration<Rep, Period> timeout) const {
    return !state_ || state_->wait_for(timeout);
  }

  /// Rethrow the block's exception if it failed (call after done()).
  void rethrow_if_error() const {
    if (state_) state_->rethrow_if_error();
  }

  [[nodiscard]] const std::shared_ptr<CompletionState>& state() const noexcept {
    return state_;
  }

 private:
  std::shared_ptr<CompletionState> state_;
};

}  // namespace evmp::exec

#pragma once
// Move-only type-erased callable. Tasks frequently capture move-only state
// (completion handles, promises), which std::function cannot hold.

#include <memory>
#include <type_traits>
#include <utility>

namespace evmp::exec {

template <class Signature>
class UniqueFunction;

/// Move-only replacement for std::function<R(Args...)>.
template <class R, class... Args>
class UniqueFunction<R(Args...)> {
 public:
  UniqueFunction() = default;

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  UniqueFunction(F&& f)  // NOLINT(google-explicit-constructor): mirrors std::function
      : impl_(std::make_unique<Model<std::decay_t<F>>>(std::forward<F>(f))) {}

  UniqueFunction(UniqueFunction&&) noexcept = default;
  UniqueFunction& operator=(UniqueFunction&&) noexcept = default;
  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  explicit operator bool() const noexcept { return impl_ != nullptr; }

  R operator()(Args... args) {
    return impl_->invoke(std::forward<Args>(args)...);
  }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual R invoke(Args&&... args) = 0;
  };

  template <class F>
  struct Model final : Concept {
    explicit Model(F f) : fn(std::move(f)) {}
    R invoke(Args&&... args) override {
      return fn(std::forward<Args>(args)...);
    }
    F fn;
  };

  std::unique_ptr<Concept> impl_;
};

}  // namespace evmp::exec

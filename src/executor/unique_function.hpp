#pragma once
// Move-only type-erased callable with small-buffer optimization. Tasks
// frequently capture move-only state (completion handles, promises), which
// std::function cannot hold — and they are created once per directive, so
// the seed's make_unique-per-construction was one heap allocation on every
// dispatch. Callables that fit the inline buffer (and move without
// throwing) are now stored in place; larger or throwing-move callables
// fall back to the heap exactly as before.

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace evmp::exec {

template <class Signature>
class UniqueFunction;

/// Move-only replacement for std::function<R(Args...)>.
template <class R, class... Args>
class UniqueFunction<R(Args...)> {
 public:
  /// Inline storage size: sized for the runtime's dispatch wrapper (a
  /// pooled completion handle + tag group + executor + flag, ~32 B of
  /// protocol) plus a hot user capture of ~88 B; the whole object stays
  /// within two cache lines.
  static constexpr std::size_t kInlineCapacity = 120;
  static_assert(kInlineCapacity >= 64,
                "inline buffer must hold the runtime's hot dispatch "
                "captures; shrinking it reintroduces per-post allocations");

  UniqueFunction() = default;

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::function
  UniqueFunction(F&& f) {
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { steal(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  /// True when the wrapped callable lives in the inline buffer (empty
  /// functions report false). Exposed for the SBO boundary tests and the
  /// allocation benchmarks.
  [[nodiscard]] bool is_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_stored;
  }

 private:
  template <class D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineCapacity &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  struct Ops {
    R (*invoke)(void* self, Args&&... args);
    /// Move-construct the callable at `dst` from `src`, destroying `src`.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* self) noexcept;
    bool inline_stored;
  };

  template <class D>
  static constexpr Ops kInlineOps = {
      // invoke
      [](void* self, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<D*>(self)))(
            std::forward<Args>(args)...);
      },
      // relocate
      [](void* dst, void* src) noexcept {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      // destroy
      [](void* self) noexcept {
        std::launder(reinterpret_cast<D*>(self))->~D();
      },
      /*inline_stored=*/true,
  };

  template <class D>
  static constexpr Ops kHeapOps = {
      // invoke
      [](void* self, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<D**>(self)))(
            std::forward<Args>(args)...);
      },
      // relocate: the "object" in storage is just the owning pointer.
      [](void* dst, void* src) noexcept {
        D** from = std::launder(reinterpret_cast<D**>(src));
        ::new (dst) D*(*from);
      },
      // destroy
      [](void* self) noexcept {
        delete *std::launder(reinterpret_cast<D**>(self));
      },
      /*inline_stored=*/false,
  };

  void steal(UniqueFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(storage_, other.storage_);
      ops_ = std::exchange(other.ops_, nullptr);
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace evmp::exec

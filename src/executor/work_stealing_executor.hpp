#pragma once
// Lock-free work-stealing thread pool: the default backing for worker
// virtual targets. The paper's central-queue executor (ThreadPoolExecutor)
// serialises all submissions through one lock; the previous stealing pool
// (kept as LockedWorkStealingExecutor for the ablation) removed the global
// lock but still paid a per-worker std::mutex on every deque operation and
// woke idlers through one polled condition variable. This version removes
// both taxes:
//
//  * each worker owns a common::ChaseLevDeque<TaskNode*> — owner push/pop
//    are fence-only (no RMW in the common case), thieves pay one CAS per
//    stolen task, and a failed steal never blocks anyone;
//  * tasks live in pooled TaskNode envelopes (common::ObjectPool), so the
//    deques move trivially-copyable pointers — the racy pre-CAS slot reads
//    Chase–Lev requires are well-defined, and the steady state allocates
//    nothing (enforced by bench_steal_throughput --alloc-check);
//  * foreign post() cannot touch a Chase–Lev bottom (owner-only), so
//    non-worker submissions land in a ShardedMpmcQueue injection queue
//    that workers poll between their own deque and stealing;
//  * idle workers spin-then-park on a common::EventCount — notify_one
//    wakes exactly one worker the moment work arrives (no 1 ms polling, no
//    thundering-herd rescan of every deque), and a producer that finds no
//    waiters never reaches a syscall;
//  * steal victims are probed near-before-far: each worker's victim order
//    is built once from common::Topology (SMT sibling, then LLC peer, then
//    same NUMA node, then remote; randomised within each tier), so a
//    stolen task's captures cross the smallest possible cache boundary.
//    near_steals()/far_steals() split the counter at the LLC tier. On
//    flat topologies (no sysfs) every peer ranks equal and the order
//    degrades to the shuffled-uniform scan used before.
//
// EVMP_PIN=1 additionally pins worker i to its topology CPU and switches
// the injection queue's home-shard hash from thread identity to the
// current CPU, so producer locality maps onto shard locality. Pinning is
// advisory: where sched_setaffinity is unavailable or refused the workers
// simply run unpinned (pinned_workers() reports how many stuck).
//
// bench_steal_throughput and bench_ablation_pool quantify the gap against
// LockedWorkStealingExecutor; DESIGN.md §9 documents the memory-ordering
// and parking arguments, §11 the victim ordering and pinning semantics.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/chase_lev_deque.hpp"
#include "common/event_count.hpp"
#include "common/object_pool.hpp"
#include "common/sharded_queue.hpp"
#include "common/topology.hpp"
#include "executor/executor.hpp"

namespace evmp::exec {

/// Fixed-size pool with per-worker lock-free Chase–Lev deques, a sharded
/// injection queue for foreign submissions, topology-ordered stealing and
/// event-count parking.
class WorkStealingExecutor final : public Executor {
 public:
  /// Builds victim orders from the process topology
  /// (common::Topology::instance()) and honours EVMP_PIN.
  WorkStealingExecutor(std::string name, std::size_t num_threads);
  /// Explicit-topology variant (tests inject fake machines; `topo` is
  /// copied). `pin` forces worker pinning on or off regardless of EVMP_PIN.
  WorkStealingExecutor(std::string name, std::size_t num_threads,
                       const common::Topology& topo, bool pin);
  ~WorkStealingExecutor() override;

  void post(Task task) override;
  /// Admit a burst: a worker thread appends to its own deque in order (the
  /// same state as N posts); a foreign thread lands the whole batch on one
  /// injection shard under one lock with one wakeup, preserving FIFO order
  /// within the batch.
  void post_batch(std::span<Task> tasks) override;
  bool try_run_one() override;
  [[nodiscard]] std::size_t concurrency() const noexcept override;
  [[nodiscard]] std::size_t pending() const override;

  /// Stop accepting tasks, drain all queues, and join. Idempotent.
  /// Publishes pop/steal/injection/batch counters to common::Tracer.
  void shutdown();

  /// Tasks executed from the owning worker's deque (LIFO pops).
  [[nodiscard]] std::uint64_t local_pops() const noexcept {
    return local_pops_.load(std::memory_order_relaxed);
  }
  /// Tasks stolen from another worker's deque (all distances).
  [[nodiscard]] std::uint64_t steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }
  /// Steals from a victim within the thief's LLC tier (SMT sibling or
  /// cache peer). Foreign-thread steals have no locality and count as far.
  [[nodiscard]] std::uint64_t near_steals() const noexcept {
    return near_steals_.load(std::memory_order_relaxed);
  }
  /// Steals that crossed the LLC boundary (plus foreign-thread steals).
  [[nodiscard]] std::uint64_t far_steals() const noexcept {
    return steals() - near_steals();
  }
  /// Tasks taken from the foreign-submission injection queue.
  [[nodiscard]] std::uint64_t injection_pops() const noexcept {
    return injection_pops_.load(std::memory_order_relaxed);
  }
  /// post_batch() calls accepted.
  [[nodiscard]] std::uint64_t batch_posts() const noexcept {
    return batch_posts_.load(std::memory_order_relaxed);
  }
  /// Workers successfully pinned to their topology CPU (0 unless
  /// EVMP_PIN=1 or the pinning constructor was used).
  [[nodiscard]] std::uint64_t pinned_workers() const noexcept {
    return pinned_workers_.load(std::memory_order_relaxed);
  }

  /// The victim probe order (worker indices, near-before-far) built for
  /// one worker — exposed for tests and diagnostics.
  [[nodiscard]] std::vector<int> victim_order_for(int worker) const;
  /// How many leading entries of victim_order_for(worker) are near (same
  /// LLC tier).
  [[nodiscard]] std::size_t near_victims_of(int worker) const;

 private:
  /// Pooled envelope a deque slot points at. The pool requires the node to
  /// be default-constructible and expose pool_next_; nodes are recycled
  /// (released the moment their task is moved out), never freed.
  struct TaskNode {
    Task fn;
    TaskNode* pool_next_ = nullptr;
  };
  using NodePool = common::ObjectPool<TaskNode>;

  struct Worker {
    // Separate cache lines per worker happen naturally: ChaseLevDeque
    // aligns its hot indices to 64 B internally.
    common::ChaseLevDeque<TaskNode*> deque;
    // Steal probe order (worker indices), nearest tier first; the first
    // near_victims entries share this worker's LLC. Immutable after
    // construction.
    std::vector<int> victims;
    std::size_t near_victims = 0;
    int cpu = -1;  ///< topology CPU this worker pins to under EVMP_PIN
  };

  /// Take a node: own deque first (LIFO), then the injection queue, then
  /// steal (FIFO) near-before-far along the worker's victim order,
  /// retrying a victim on a lost CAS race. `self` < 0 means a foreign
  /// caller (injection + rotating uniform steal only).
  bool take_node(int self, TaskNode*& out);
  /// Unwrap, recycle the envelope, run. Recycling before running keeps the
  /// node hot for a task that immediately spawns more work.
  void run_node(TaskNode* node);
  void worker_main(int index);
  [[nodiscard]] int current_worker_index() const noexcept;

  std::vector<std::unique_ptr<Worker>> workers_;
  common::ShardedMpmcQueue<TaskNode*> injection_;
  common::EventCount idle_;
  bool pin_workers_ = false;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shut_down_{false};
  std::atomic<std::uint64_t> next_victim_{0};
  std::atomic<std::uint64_t> local_pops_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> near_steals_{0};
  std::atomic<std::uint64_t> injection_pops_{0};
  std::atomic<std::uint64_t> batch_posts_{0};
  std::atomic<std::uint64_t> pinned_workers_{0};
  std::vector<std::jthread> threads_;  // last: start after queues exist
};

}  // namespace evmp::exec

#pragma once
// Fixed-size worker thread pool — the backing of a `virtual(worker)` target
// created via virtual_target_create_worker(name, m) (paper Table II).

#include <cstddef>
#include <thread>
#include <vector>

#include "common/queue.hpp"
#include "executor/executor.hpp"

namespace evmp::exec {

/// A named pool of `m` worker threads sharing one FIFO task queue.
///
/// Threads are started in the constructor and joined in the destructor
/// (or an explicit shutdown()); tasks still queued at shutdown are drained
/// before the threads exit, so no accepted work is silently dropped.
class ThreadPoolExecutor final : public Executor {
 public:
  ThreadPoolExecutor(std::string name, std::size_t num_threads);
  ~ThreadPoolExecutor() override;

  void post(Task task) override;
  bool try_run_one() override;
  [[nodiscard]] std::size_t concurrency() const noexcept override;
  [[nodiscard]] std::size_t pending() const override;

  /// Stop accepting tasks, drain the queue, and join all workers.
  /// Idempotent; called automatically by the destructor.
  void shutdown();

 private:
  void worker_main();

  common::MpmcQueue<Task> queue_;
  std::vector<std::jthread> threads_;
  std::atomic<bool> shut_down_{false};
};

}  // namespace evmp::exec

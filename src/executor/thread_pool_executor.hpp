#pragma once
// Fixed-size worker thread pool — the backing of a `virtual(worker)` target
// created via virtual_target_create_worker(name, m) (paper Table II).

#include <cstddef>
#include <thread>
#include <vector>

#include "common/sharded_queue.hpp"
#include "executor/executor.hpp"

namespace evmp::exec {

/// A named pool of `m` worker threads sharing one sharded FIFO run queue.
///
/// The queue is striped so disjoint producers take disjoint locks (see
/// common::ShardedMpmcQueue); each worker drains its own home shard first
/// and pulls from sibling shards when dry, and post_batch() admits a whole
/// burst under one lock. Threads are started in the constructor and joined
/// in the destructor (or an explicit shutdown()); tasks still queued at
/// shutdown are drained before the threads exit, so no accepted work is
/// silently dropped.
class ThreadPoolExecutor final : public Executor {
 public:
  /// `num_shards` 0 picks one shard per worker (rounded up to a power of
  /// two), which keeps a single-thread pool on the classic one-lock layout.
  ThreadPoolExecutor(std::string name, std::size_t num_threads,
                     std::size_t num_shards = 0);
  ~ThreadPoolExecutor() override;

  void post(Task task) override;
  bool try_post(Task task) override;
  void post_batch(std::span<Task> tasks) override;
  bool try_run_one() override;
  [[nodiscard]] std::size_t concurrency() const noexcept override;
  [[nodiscard]] std::size_t pending() const override;

  /// Stop accepting tasks, drain the queue, and join all workers.
  /// Idempotent; called automatically by the destructor. Publishes the
  /// queue counters to common::Tracer under "<name>.<counter>".
  void shutdown();

  /// Bound the run queue for try_post() (0 = unbounded). post() is never
  /// bounded — see Executor::try_post for the contract split.
  void set_queue_capacity(std::size_t capacity) noexcept {
    queue_.set_capacity(capacity);
  }

  [[nodiscard]] std::size_t queue_capacity() const noexcept {
    return queue_.capacity();
  }

  /// Run-queue fan-in counters (posts, batches, steals, collisions ...).
  [[nodiscard]] common::ShardedQueueStats queue_stats() const noexcept {
    return queue_.stats();
  }

 private:
  void worker_main(std::size_t index);

  common::ShardedMpmcQueue<Task> queue_;
  std::vector<std::jthread> threads_;
  std::atomic<bool> shut_down_{false};
};

}  // namespace evmp::exec

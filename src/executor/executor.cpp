#include "executor/executor.hpp"

#include <exception>

#include "common/logging.hpp"
#include "common/tracing.hpp"

namespace evmp::exec {

namespace {

thread_local Executor* t_current_executor = nullptr;

void default_unhandled(std::string_view executor_name, std::exception_ptr ep) {
  try {
    if (ep) std::rethrow_exception(ep);
  } catch (const std::exception& e) {
    EVMP_LOG_ERROR << "unhandled exception in fire-and-forget task on '"
                   << executor_name << "': " << e.what();
  } catch (...) {
    EVMP_LOG_ERROR << "unhandled non-std exception in fire-and-forget task on '"
                   << executor_name << "'";
  }
}

std::atomic<UnhandledExceptionHook> g_hook{&default_unhandled};

}  // namespace

void set_unhandled_exception_hook(UnhandledExceptionHook hook) noexcept {
  g_hook.store(hook ? hook : &default_unhandled, std::memory_order_relaxed);
}

UnhandledExceptionHook unhandled_exception_hook() noexcept {
  return g_hook.load(std::memory_order_relaxed);
}

Executor* Executor::current() noexcept { return t_current_executor; }

void Executor::run_task(Task& task) noexcept {
  const bool tracing = common::Tracer::instance().enabled();
  const common::TimePoint start = tracing ? common::now() : common::TimePoint{};
  try {
    task();
  } catch (...) {
    unhandled_exception_hook()(name_, std::current_exception());
  }
  executed_.fetch_add(1, std::memory_order_relaxed);
  if (tracing) {
    common::Tracer::instance().record(name_, "executor", start, common::now());
  }
}

Executor::ThreadBinding::ThreadBinding(Executor* e) noexcept
    : previous_(t_current_executor) {
  t_current_executor = e;
}

Executor::ThreadBinding::~ThreadBinding() { t_current_executor = previous_; }

}  // namespace evmp::exec

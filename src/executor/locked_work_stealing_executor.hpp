#pragma once
// The original mutex-per-deque work-stealing pool, kept verbatim as the
// ablation baseline for the lock-free WorkStealingExecutor: every deque
// operation takes a per-worker std::mutex and idle workers poll a single
// shared condition variable. bench_steal_throughput and
// bench_ablation_pool run the two implementations head-to-head; keeping
// the locked one alive (behind Runtime::create_locked_stealing_worker)
// means the comparison can never rot into a guess.
//
// Design: each worker owns a deque (own work is taken LIFO for locality;
// thieves take FIFO from the other end). Foreign submissions distribute
// round-robin. Idle workers sleep on a shared condition variable and
// re-scan every deque on wakeup, so no task can be stranded.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/ring_buffer.hpp"
#include "executor/executor.hpp"

namespace evmp::exec {

/// Fixed-size pool with per-worker mutex-guarded deques and work stealing.
class LockedWorkStealingExecutor final : public Executor {
 public:
  LockedWorkStealingExecutor(std::string name, std::size_t num_threads);
  ~LockedWorkStealingExecutor() override;

  void post(Task task) override;
  /// Admit a burst into one worker deque under a single lock with a single
  /// wakeup; the deque is chosen round-robin like foreign post(). Batch
  /// order is preserved at the steal (FIFO) end of the deque.
  void post_batch(std::span<Task> tasks) override;
  bool try_run_one() override;
  [[nodiscard]] std::size_t concurrency() const noexcept override;
  [[nodiscard]] std::size_t pending() const override;

  /// Stop accepting tasks, drain all deques, and join. Idempotent.
  /// Publishes pop/steal/batch counters to common::Tracer.
  void shutdown();

  /// Tasks executed from the owning worker's deque (LIFO pops).
  [[nodiscard]] std::uint64_t local_pops() const noexcept {
    return local_pops_.load(std::memory_order_relaxed);
  }
  /// Tasks stolen from another worker's deque.
  [[nodiscard]] std::uint64_t steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }
  /// post_batch() calls accepted.
  [[nodiscard]] std::uint64_t batch_posts() const noexcept {
    return batch_posts_.load(std::memory_order_relaxed);
  }

 private:
  struct WorkerQueue {
    std::mutex mu;
    // RingBuffer instead of std::deque: retains its high-water capacity, so
    // a steady-state deque never allocates (std::deque churns 512 B chunks
    // as head/tail cross block edges).
    common::RingBuffer<Task> tasks;
  };

  /// Take a task: own deque first (LIFO), then steal (FIFO) starting from
  /// a rotating victim. `self` < 0 means a foreign caller (steal only).
  bool take_task(int self, Task& out);
  void worker_main(int index);
  [[nodiscard]] int current_worker_index() const noexcept;

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shut_down_{false};
  std::atomic<std::uint64_t> next_victim_{0};
  std::atomic<std::uint64_t> local_pops_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> batch_posts_{0};
  std::vector<std::jthread> threads_;  // last: start after queues exist
};

}  // namespace evmp::exec

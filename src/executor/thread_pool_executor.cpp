#include "executor/thread_pool_executor.hpp"

#include <string>

#include "common/logging.hpp"
#include "common/tracing.hpp"

namespace evmp::exec {

namespace {
// Index of the calling worker within its pool's thread vector; used as the
// home-shard hint so worker i drains shard (i mod shards) first. -1 on
// foreign threads.
thread_local const ThreadPoolExecutor* t_pool = nullptr;
thread_local std::size_t t_worker_index = 0;

std::size_t default_shards(std::size_t num_threads, std::size_t num_shards) {
  // One shard per worker by default: a 1-thread pool degenerates to the
  // classic single-lock queue, wider pools get proportionally more stripes.
  return num_shards != 0 ? num_shards : (num_threads == 0 ? 1 : num_threads);
}
}  // namespace

ThreadPoolExecutor::ThreadPoolExecutor(std::string pool_name,
                                       std::size_t num_threads,
                                       std::size_t num_shards)
    : Executor(std::move(pool_name)),
      queue_(default_shards(num_threads, num_shards)) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPoolExecutor::~ThreadPoolExecutor() { shutdown(); }

void ThreadPoolExecutor::post(Task task) {
  if (!queue_.push(std::move(task))) {
    EVMP_LOG_WARN << "task posted to shut-down pool '" << name()
                  << "' was dropped";
  }
}

bool ThreadPoolExecutor::try_post(Task task) {
  return queue_.try_push(std::move(task));
}

void ThreadPoolExecutor::post_batch(std::span<Task> tasks) {
  if (tasks.empty()) return;
  if (queue_.push_batch(tasks) == 0) {
    EVMP_LOG_WARN << "batch of " << tasks.size() << " tasks posted to "
                  << "shut-down pool '" << name() << "' was dropped";
  }
}

bool ThreadPoolExecutor::try_run_one() {
  auto task = t_pool == this ? queue_.try_pop(t_worker_index)
                             : queue_.try_pop();
  if (!task) return false;
  run_task(*task);
  return true;
}

std::size_t ThreadPoolExecutor::concurrency() const noexcept {
  return threads_.size();
}

std::size_t ThreadPoolExecutor::pending() const { return queue_.size(); }

void ThreadPoolExecutor::shutdown() {
  if (shut_down_.exchange(true)) return;
  queue_.close();
  threads_.clear();  // jthread joins on destruction

  const auto s = queue_.stats();
  auto& tracer = common::Tracer::instance();
  const std::string prefix(name());
  tracer.set_counter(prefix + ".posts", s.pushes);
  tracer.set_counter(prefix + ".batch_posts", s.batch_pushes);
  tracer.set_counter(prefix + ".batch_items", s.batch_items);
  tracer.set_counter(prefix + ".steals", s.steals);
  tracer.set_counter(prefix + ".shard_collisions", s.collisions);
  tracer.set_counter(prefix + ".max_shard_depth", s.max_depth);
  tracer.set_counter(prefix + ".rejections", s.rejections);
}

void ThreadPoolExecutor::worker_main(std::size_t index) {
  ThreadBinding bind(this);
  t_pool = this;
  t_worker_index = index;
  while (auto task = queue_.pop(index)) {
    run_task(*task);
  }
  // pop() returned nullopt: queue closed and fully drained.
  t_pool = nullptr;
  t_worker_index = 0;
}

}  // namespace evmp::exec

#include "executor/thread_pool_executor.hpp"

#include "common/logging.hpp"

namespace evmp::exec {

ThreadPoolExecutor::ThreadPoolExecutor(std::string pool_name,
                                       std::size_t num_threads)
    : Executor(std::move(pool_name)) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { worker_main(); });
  }
}

ThreadPoolExecutor::~ThreadPoolExecutor() { shutdown(); }

void ThreadPoolExecutor::post(Task task) {
  if (!queue_.push(std::move(task))) {
    EVMP_LOG_WARN << "task posted to shut-down pool '" << name()
                  << "' was dropped";
  }
}

bool ThreadPoolExecutor::try_run_one() {
  auto task = queue_.try_pop();
  if (!task) return false;
  run_task(*task);
  return true;
}

std::size_t ThreadPoolExecutor::concurrency() const noexcept {
  return threads_.size();
}

std::size_t ThreadPoolExecutor::pending() const { return queue_.size(); }

void ThreadPoolExecutor::shutdown() {
  if (shut_down_.exchange(true)) return;
  queue_.close();
  threads_.clear();  // jthread joins on destruction
}

void ThreadPoolExecutor::worker_main() {
  ThreadBinding bind(this);
  while (auto task = queue_.pop()) {
    run_task(*task);
  }
  // pop() returned nullopt: queue closed and fully drained.
}

}  // namespace evmp::exec

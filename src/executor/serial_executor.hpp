#pragma once
// Single-threaded executor with a dedicated owned thread. Tasks execute in
// FIFO order with no concurrency — the execution model of a worker virtual
// target of scale 1, and the base of the simulated accelerator device.

#include <thread>

#include "common/queue.hpp"
#include "executor/executor.hpp"

namespace evmp::exec {

/// One dedicated thread draining a FIFO queue.
class SerialExecutor : public Executor {
 public:
  explicit SerialExecutor(std::string name);
  ~SerialExecutor() override;

  void post(Task task) override;
  bool try_run_one() override;
  [[nodiscard]] std::size_t concurrency() const noexcept override { return 1; }
  [[nodiscard]] std::size_t pending() const override;

  /// Stop accepting tasks, drain, and join. Idempotent.
  void shutdown();

 protected:
  /// Hook for subclasses (e.g. the simulated device) to wrap task
  /// execution with extra behaviour. Default: run_task(task).
  virtual void execute(Task& task);

 private:
  void thread_main();

  common::MpmcQueue<Task> queue_;
  std::atomic<bool> shut_down_{false};
  std::jthread thread_;  // declared last: starts after queue_ is ready
};

}  // namespace evmp::exec

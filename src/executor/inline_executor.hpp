#pragma once
// Executor that runs every task synchronously on the posting thread.
// Used when directives are disabled (sequential-equivalence mode) and as a
// degenerate target in tests.

#include "executor/executor.hpp"

namespace evmp::exec {

/// Synchronous pass-through executor.
///
/// owns_current_thread() is always true: with directives "ignored", every
/// thread is trivially a member, so Algorithm 1 takes the inline fast-path.
class InlineExecutor final : public Executor {
 public:
  explicit InlineExecutor(std::string name = "inline")
      : Executor(std::move(name)) {}

  void post(Task task) override { run_task(task); }
  [[nodiscard]] bool owns_current_thread() const noexcept override {
    return true;
  }
  bool try_run_one() override { return false; }
  [[nodiscard]] std::size_t concurrency() const noexcept override { return 0; }
  [[nodiscard]] std::size_t pending() const override { return 0; }
};

}  // namespace evmp::exec

#pragma once
// The Executor abstraction: what the paper calls a "virtual target" is, at
// runtime, an executor — a named execution environment with a thread
// affiliation (which threads belong to it) and a scale (how many threads).
//
// Three operations matter to Algorithm 1 of the paper:
//   * post()                — submit a block asynchronously (line 8);
//   * owns_current_thread() — the membership test "T ∈ E" (line 6);
//   * try_run_one()         — "process another event handler/task" used by
//                             the `await` logical barrier (lines 14-16).

#include <atomic>
#include <cstddef>
#include <span>
#include <string>
#include <string_view>

#include "executor/unique_function.hpp"

namespace evmp::exec {

/// A unit of work submitted to an executor.
using Task = UniqueFunction<void()>;

/// Hook invoked when a fire-and-forget task throws (nowait blocks have no
/// join point at which to rethrow). Default: log and continue.
using UnhandledExceptionHook = void (*)(std::string_view executor_name,
                                        std::exception_ptr);
void set_unhandled_exception_hook(UnhandledExceptionHook hook) noexcept;
UnhandledExceptionHook unhandled_exception_hook() noexcept;

/// Abstract execution environment ("virtual target" backing).
class Executor {
 public:
  explicit Executor(std::string name) : name_(std::move(name)) {}
  virtual ~Executor() = default;
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Submit a task for asynchronous execution. Implementations must not
  /// execute the task synchronously inside post() (Algorithm 1 handles the
  /// membership fast-path before posting).
  virtual void post(Task task) = 0;

  /// Bounded submission: as post(), but an executor with a capped run
  /// queue may refuse the task (returns false, task destroyed unrun) when
  /// the queue is at capacity. The default accepts unconditionally via
  /// post(). Callers that cannot shed — completion-carrying dispatches —
  /// must use post(), whose must-succeed contract is unchanged.
  virtual bool try_post(Task task) {
    post(std::move(task));
    return true;
  }

  /// Submit a burst of tasks in one call, moving each task out of `tasks`.
  /// Queue-backed executors override this to take their submission lock
  /// once and notify once per batch instead of once per task; the default
  /// degrades to per-task post(). Relative order within the batch is
  /// preserved wherever post() preserves it.
  virtual void post_batch(std::span<Task> tasks) {
    for (Task& task : tasks) {
      post(std::move(task));
    }
  }

  /// True when the calling thread belongs to this executor's thread group.
  /// The default implementation uses the thread-local binding established
  /// by ThreadBinding in each worker's main loop.
  [[nodiscard]] virtual bool owns_current_thread() const noexcept {
    return current() == this;
  }

  /// Run one queued task on the *calling* thread, if any is pending.
  /// Used by member threads to make progress while logically waiting.
  /// Returns false when nothing was run (empty queue or unsupported).
  virtual bool try_run_one() = 0;

  /// Number of threads serving this executor.
  [[nodiscard]] virtual std::size_t concurrency() const noexcept = 0;

  /// Tasks queued but not yet started.
  [[nodiscard]] virtual std::size_t pending() const = 0;

  [[nodiscard]] std::string_view name() const noexcept { return name_; }

  /// Total tasks fully executed by this executor.
  [[nodiscard]] std::uint64_t tasks_executed() const noexcept {
    return executed_.load(std::memory_order_relaxed);
  }

  // --- thread affiliation ----------------------------------------------
  /// Executor whose thread group the calling thread belongs to (nullptr for
  /// foreign threads, e.g. main()).
  static Executor* current() noexcept;

 protected:
  /// Run a task with the executor-affiliation and exception protocol all
  /// implementations share. Exceptions escaping the task go to the
  /// unhandled-exception hook (completion-tracked tasks wrap themselves in
  /// try/catch before reaching the executor, so anything arriving here is
  /// fire-and-forget).
  void run_task(Task& task) noexcept;

  /// RAII marker binding the calling thread to this executor.
  class ThreadBinding {
   public:
    explicit ThreadBinding(Executor* e) noexcept;
    ~ThreadBinding();
    ThreadBinding(const ThreadBinding&) = delete;
    ThreadBinding& operator=(const ThreadBinding&) = delete;

   private:
    Executor* previous_;
  };

 private:
  std::string name_;
  std::atomic<std::uint64_t> executed_{0};
};

}  // namespace evmp::exec

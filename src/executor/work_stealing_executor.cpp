#include "executor/work_stealing_executor.hpp"

#include <algorithm>
#include <array>
#include <string>

#include "common/env.hpp"
#include "common/logging.hpp"
#include "common/tracing.hpp"

namespace evmp::exec {

namespace {
// Which worker of which stealing pool the current thread is (set once in
// worker_main; -1 on foreign threads).
thread_local const WorkStealingExecutor* t_pool = nullptr;
thread_local int t_worker_index = -1;

// Foreign post_batch() wraps tasks in nodes through this stack staging
// area, one injection push_batch per chunk — bounded so a burst of any
// size stays allocation-free here.
constexpr std::size_t kBatchChunk = 64;
}  // namespace

WorkStealingExecutor::WorkStealingExecutor(std::string pool_name,
                                           std::size_t num_threads)
    : WorkStealingExecutor(
          std::move(pool_name), num_threads, common::Topology::instance(),
          common::env_bool("EVMP_PIN").value_or(false)) {}

WorkStealingExecutor::WorkStealingExecutor(std::string pool_name,
                                           std::size_t num_threads,
                                           const common::Topology& topo,
                                           bool pin)
    : Executor(std::move(pool_name)), pin_workers_(pin) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  const int n = static_cast<int>(num_threads);
  for (int i = 0; i < n; ++i) {
    auto worker = std::make_unique<Worker>();
    // Near-before-far probe order, randomised within each distance tier
    // (per-worker seed: deterministic across runs, distinct across
    // workers so equal-tier thieves fan out).
    auto order = topo.victim_order(i, n, 0x5eed);
    worker->victims = std::move(order.order);
    worker->near_victims = order.near_count;
    worker->cpu = topo.cpu(topo.cpu_for_worker(i)).id;
    workers_.push_back(std::move(worker));
  }
  if (pin_workers_) {
    // Producer locality → shard locality: hash foreign posts by the CPU
    // they run on instead of by thread identity.
    injection_.set_cpu_home(true);
  }
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { worker_main(static_cast<int>(i)); });
  }
}

WorkStealingExecutor::~WorkStealingExecutor() { shutdown(); }

int WorkStealingExecutor::current_worker_index() const noexcept {
  return t_pool == this ? t_worker_index : -1;
}

void WorkStealingExecutor::post(Task task) {
  if (stopping_.load(std::memory_order_acquire)) {
    EVMP_LOG_WARN << "task posted to shut-down stealing pool '" << name()
                  << "' was dropped";
    return;
  }
  TaskNode* node = NodePool::acquire();
  node->fn = std::move(task);
  const int self = current_worker_index();
  if (self >= 0) {
    // Own deque, LIFO end: no lock, no RMW — slot store + release fence.
    workers_[static_cast<std::size_t>(self)]->deque.push_bottom(node);
  } else {
    // Foreign threads may not touch a Chase–Lev bottom; inject instead.
    injection_.push(node);
  }
  idle_.notify_one();
}

void WorkStealingExecutor::post_batch(std::span<Task> tasks) {
  if (tasks.empty()) return;
  if (stopping_.load(std::memory_order_acquire)) {
    EVMP_LOG_WARN << "batch of " << tasks.size()
                  << " tasks posted to shut-down stealing pool '" << name()
                  << "' was dropped";
    return;
  }
  const int self = current_worker_index();
  if (self >= 0) {
    // Own deque: append in order behind existing work, like N posts.
    auto& deque = workers_[static_cast<std::size_t>(self)]->deque;
    for (Task& task : tasks) {
      TaskNode* node = NodePool::acquire();
      node->fn = std::move(task);
      deque.push_bottom(node);
    }
  } else {
    // Foreign burst: one injection shard for the whole batch keeps its
    // relative order FIFO; chunked staging keeps this path heap-free.
    const std::size_t shard = injection_.home_shard();
    std::array<TaskNode*, kBatchChunk> staged;
    std::size_t i = 0;
    while (i < tasks.size()) {
      const std::size_t m = std::min(kBatchChunk, tasks.size() - i);
      for (std::size_t j = 0; j < m; ++j) {
        TaskNode* node = NodePool::acquire();
        node->fn = std::move(tasks[i + j]);
        staged[j] = node;
      }
      injection_.push_batch_to(shard, std::span(staged.data(), m));
      i += m;
    }
  }
  batch_posts_.fetch_add(1, std::memory_order_relaxed);
  idle_.notify_all();  // a batch may satisfy many parked workers
}

bool WorkStealingExecutor::take_node(int self, TaskNode*& out) {
  // 1. Own deque, newest first (locality: the task most likely to have its
  //    captures still in this core's cache).
  if (self >= 0) {
    if (workers_[static_cast<std::size_t>(self)]->deque.pop_bottom(out)) {
      local_pops_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  // 2. Foreign submissions from the injection queue (non-blocking).
  const std::size_t home = self >= 0 ? static_cast<std::size_t>(self)
                                     : injection_.home_shard();
  if (auto injected = injection_.try_pop(home)) {
    out = *injected;
    injection_pops_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // 3. Steal oldest-first, near victims before far ones. A lost CAS
  //    (kAbort) means the victim demonstrably has traffic — retry it
  //    rather than walking away from a deque that had work an instant ago.
  using Steal = common::ChaseLevDeque<TaskNode*>::Steal;
  if (self >= 0) {
    // Worker thief: probe this worker's topology-ordered victim list (SMT
    // sibling, LLC peers, node peers, remote — shuffled within tiers at
    // construction). Always starting at the nearest victim is the point:
    // a hit there keeps the task's captures inside the shared cache.
    const Worker& me = *workers_[static_cast<std::size_t>(self)];
    for (std::size_t k = 0; k < me.victims.size(); ++k) {
      auto& victim =
          workers_[static_cast<std::size_t>(me.victims[k])]->deque;
      for (;;) {
        const Steal result = victim.steal_top(out);
        if (result == Steal::kSuccess) {
          steals_.fetch_add(1, std::memory_order_relaxed);
          if (k < me.near_victims) {
            near_steals_.fetch_add(1, std::memory_order_relaxed);
          }
          return true;
        }
        if (result == Steal::kEmpty) break;
      }
    }
    return false;
  }
  // Foreign thief (try_run_one from outside, shutdown drain): no locality
  // to exploit — rotate uniformly so repeated helpers spread out.
  const std::size_t n = workers_.size();
  const std::size_t start =
      next_victim_.fetch_add(1, std::memory_order_relaxed) % n;
  for (std::size_t k = 0; k < n; ++k) {
    auto& victim = workers_[(start + k) % n]->deque;
    for (;;) {
      const Steal result = victim.steal_top(out);
      if (result == Steal::kSuccess) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      if (result == Steal::kEmpty) break;
    }
  }
  return false;
}

void WorkStealingExecutor::run_node(TaskNode* node) {
  Task task = std::move(node->fn);
  NodePool::release(node);  // recycle before running: spawned children reuse it
  run_task(task);
}

bool WorkStealingExecutor::try_run_one() {
  TaskNode* node = nullptr;
  if (!take_node(current_worker_index(), node)) return false;
  run_node(node);
  return true;
}

std::size_t WorkStealingExecutor::concurrency() const noexcept {
  return threads_.size();
}

std::size_t WorkStealingExecutor::pending() const {
  std::size_t total = injection_.size();
  for (const auto& w : workers_) {
    total += w->deque.size();
  }
  return total;
}

void WorkStealingExecutor::shutdown() {
  if (shut_down_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);
  idle_.notify_all();
  threads_.clear();  // jthread joins; workers drain before exiting

  // A post() racing shutdown may have slipped a node in after its worker's
  // final scan; drain stragglers on this thread so nothing is stranded.
  TaskNode* node = nullptr;
  while (take_node(-1, node)) run_node(node);

  auto& tracer = common::Tracer::instance();
  const std::string prefix(name());
  tracer.set_counter(prefix + ".local_pops",
                     local_pops_.load(std::memory_order_relaxed));
  tracer.set_counter(prefix + ".steals",
                     steals_.load(std::memory_order_relaxed));
  tracer.set_counter(prefix + ".near_steals",
                     near_steals_.load(std::memory_order_relaxed));
  tracer.set_counter(prefix + ".far_steals", far_steals());
  if (pin_workers_) {
    tracer.set_counter(prefix + ".pinned_workers",
                       pinned_workers_.load(std::memory_order_relaxed));
  }
  tracer.set_counter(prefix + ".injection_pops",
                     injection_pops_.load(std::memory_order_relaxed));
  tracer.set_counter(prefix + ".batch_posts",
                     batch_posts_.load(std::memory_order_relaxed));
}

std::vector<int> WorkStealingExecutor::victim_order_for(int worker) const {
  return workers_.at(static_cast<std::size_t>(worker))->victims;
}

std::size_t WorkStealingExecutor::near_victims_of(int worker) const {
  return workers_.at(static_cast<std::size_t>(worker))->near_victims;
}

void WorkStealingExecutor::worker_main(int index) {
  ThreadBinding bind(this);
  t_pool = this;
  t_worker_index = index;
  if (pin_workers_) {
    // Advisory: a refused sched_setaffinity (cpuset limits, non-Linux)
    // leaves the worker unpinned — correctness never depends on placement.
    const int cpu = workers_[static_cast<std::size_t>(index)]->cpu;
    if (common::Topology::pin_current_thread(cpu)) {
      pinned_workers_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  TaskNode* node = nullptr;
  for (;;) {
    if (take_node(index, node)) {
      run_node(node);
      continue;
    }
    if (stopping_.load(std::memory_order_acquire)) break;  // scan above drained

    // Out of work: climb the backoff ladder (pause-spins, then yields —
    // both skipped straight to parking on a single-core host), re-probing
    // all sources each step.
    common::SpinWait spin;
    bool found = false;
    while (spin.spin()) {
      if (take_node(index, node)) {
        found = true;
        break;
      }
      if (stopping_.load(std::memory_order_acquire)) break;
    }
    if (found) {
      run_node(node);
      continue;
    }

    // Park. prepare→re-check→commit against the EventCount: a post that
    // lands after the re-check bumps the epoch (its notify RMW is ordered
    // after our prepare RMW on the same word), so commit_wait returns
    // immediately — no lost wakeup. Shutdown's notify_all is caught the
    // same way.
    const auto key = idle_.prepare_wait();
    if (stopping_.load(std::memory_order_acquire)) {
      idle_.cancel_wait();
      continue;  // loop top drains, then exits via the stopping check
    }
    if (take_node(index, node)) {
      idle_.cancel_wait();
      run_node(node);
      continue;
    }
    idle_.commit_wait(key);
  }
  t_pool = nullptr;
  t_worker_index = -1;
}

}  // namespace evmp::exec

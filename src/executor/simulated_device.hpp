#pragma once
// Simulated accelerator device.
//
// The paper's extension is "inspired by the Accelerator Model" of OpenMP 4.0:
// `target device(n)` offloads to a physical accelerator with its own memory.
// This container has no GPU, so `device(n)` targets map to this executor — a
// dedicated device thread plus an explicit transfer-cost model, preserving
// the part of the semantics the paper contrasts against (separate execution
// context, data movement has a cost) without real hardware.

#include <atomic>
#include <cstdint>

#include "common/clock.hpp"
#include "executor/serial_executor.hpp"

namespace evmp::exec {

/// Single-threaded "device" with kernel-launch latency and a bandwidth model
/// for map(to:)/map(from:) transfers.
class SimulatedDeviceExecutor final : public SerialExecutor {
 public:
  struct Config {
    /// Fixed cost added before each offloaded block (kernel launch).
    common::Nanos launch_latency{std::chrono::microseconds{20}};
    /// Simulated host<->device interconnect bandwidth.
    double bandwidth_bytes_per_sec = 8.0e9;  // ~PCIe3 x8
  };

  SimulatedDeviceExecutor(std::string name, int device_id, Config cfg);
  SimulatedDeviceExecutor(std::string name, int device_id)
      : SimulatedDeviceExecutor(std::move(name), device_id, Config{}) {}

  [[nodiscard]] int device_id() const noexcept { return device_id_; }

  /// Model a host->device transfer of `bytes` (blocks the calling thread for
  /// the simulated duration and updates accounting).
  void transfer_to_device(std::uint64_t bytes);

  /// Model a device->host transfer.
  void transfer_from_device(std::uint64_t bytes);

  [[nodiscard]] std::uint64_t bytes_to_device() const noexcept {
    return to_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytes_from_device() const noexcept {
    return from_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t kernels_launched() const noexcept {
    return launches_.load(std::memory_order_relaxed);
  }

 protected:
  void execute(Task& task) override;

 private:
  void sleep_for_bytes(std::uint64_t bytes) const;

  const int device_id_;
  const Config cfg_;
  std::atomic<std::uint64_t> to_bytes_{0};
  std::atomic<std::uint64_t> from_bytes_{0};
  std::atomic<std::uint64_t> launches_{0};
};

}  // namespace evmp::exec

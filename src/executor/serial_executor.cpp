#include "executor/serial_executor.hpp"

#include "common/logging.hpp"

namespace evmp::exec {

SerialExecutor::SerialExecutor(std::string executor_name)
    : Executor(std::move(executor_name)),
      thread_([this] { thread_main(); }) {}

SerialExecutor::~SerialExecutor() { shutdown(); }

void SerialExecutor::post(Task task) {
  if (!queue_.push(std::move(task))) {
    EVMP_LOG_WARN << "task posted to shut-down serial executor '" << name()
                  << "' was dropped";
  }
}

bool SerialExecutor::try_run_one() {
  auto task = queue_.try_pop();
  if (!task) return false;
  execute(*task);
  return true;
}

std::size_t SerialExecutor::pending() const { return queue_.size(); }

void SerialExecutor::shutdown() {
  if (shut_down_.exchange(true)) return;
  queue_.close();
  if (thread_.joinable()) thread_.join();
}

void SerialExecutor::execute(Task& task) { run_task(task); }

void SerialExecutor::thread_main() {
  ThreadBinding bind(this);
  while (auto task = queue_.pop()) {
    execute(*task);
  }
}

}  // namespace evmp::exec

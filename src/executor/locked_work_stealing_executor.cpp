#include "executor/locked_work_stealing_executor.hpp"

#include <string>

#include "common/logging.hpp"
#include "common/tracing.hpp"

namespace evmp::exec {

namespace {
// Which worker of which locked stealing pool the current thread is (set
// once in worker_main; -1 on foreign threads).
thread_local const LockedWorkStealingExecutor* t_pool = nullptr;
thread_local int t_worker_index = -1;
}  // namespace

LockedWorkStealingExecutor::LockedWorkStealingExecutor(std::string pool_name,
                                                       std::size_t num_threads)
    : Executor(std::move(pool_name)) {
  if (num_threads == 0) num_threads = 1;
  queues_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { worker_main(static_cast<int>(i)); });
  }
}

LockedWorkStealingExecutor::~LockedWorkStealingExecutor() { shutdown(); }

int LockedWorkStealingExecutor::current_worker_index() const noexcept {
  return t_pool == this ? t_worker_index : -1;
}

void LockedWorkStealingExecutor::post(Task task) {
  if (stopping_.load(std::memory_order_acquire)) {
    EVMP_LOG_WARN << "task posted to shut-down stealing pool '" << name()
                  << "' was dropped";
    return;
  }
  const int self = current_worker_index();
  std::size_t target;
  if (self >= 0) {
    target = static_cast<std::size_t>(self);  // own deque: LIFO locality
  } else {
    target = next_victim_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  {
    std::scoped_lock lk(queues_[target]->mu);
    if (self >= 0) {
      queues_[target]->tasks.push_back(std::move(task));
    } else {
      queues_[target]->tasks.push_front(std::move(task));
    }
  }
  {
    // Notify under the idle lock (destruction-safe wakeup, see
    // EventLoop::post for the rationale).
    std::scoped_lock lk(idle_mu_);
    idle_cv_.notify_one();
  }
}

void LockedWorkStealingExecutor::post_batch(std::span<Task> tasks) {
  if (tasks.empty()) return;
  if (stopping_.load(std::memory_order_acquire)) {
    EVMP_LOG_WARN << "batch of " << tasks.size()
                  << " tasks posted to shut-down stealing pool '" << name()
                  << "' was dropped";
    return;
  }
  const int self = current_worker_index();
  const std::size_t target =
      self >= 0 ? static_cast<std::size_t>(self)
                : next_victim_.fetch_add(1, std::memory_order_relaxed) %
                      queues_.size();
  {
    std::scoped_lock lk(queues_[target]->mu);
    if (self >= 0) {
      // Own deque: append in order behind existing work, like N posts.
      for (Task& task : tasks) {
        queues_[target]->tasks.push_back(std::move(task));
      }
    } else {
      // Foreign burst: land at the steal end, first batch element in front
      // (push_front in reverse keeps the batch's relative order FIFO for
      // thieves).
      for (std::size_t i = tasks.size(); i-- > 0;) {
        queues_[target]->tasks.push_front(std::move(tasks[i]));
      }
    }
  }
  batch_posts_.fetch_add(1, std::memory_order_relaxed);
  {
    std::scoped_lock lk(idle_mu_);
    idle_cv_.notify_all();  // one wakeup for the whole burst
  }
}

bool LockedWorkStealingExecutor::take_task(int self, Task& out) {
  const std::size_t n = queues_.size();
  // 1. Own deque, newest first.
  if (self >= 0) {
    auto& q = *queues_[static_cast<std::size_t>(self)];
    std::scoped_lock lk(q.mu);
    if (!q.tasks.empty()) {
      out = q.tasks.pop_back();
      local_pops_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  // 2. Steal oldest-first from a rotating victim.
  const std::size_t start =
      next_victim_.fetch_add(1, std::memory_order_relaxed) % n;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t v = (start + k) % n;
    if (self >= 0 && v == static_cast<std::size_t>(self)) continue;
    auto& q = *queues_[v];
    std::scoped_lock lk(q.mu);
    if (!q.tasks.empty()) {
      out = q.tasks.pop_front();
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

bool LockedWorkStealingExecutor::try_run_one() {
  Task task;
  if (!take_task(current_worker_index(), task)) return false;
  run_task(task);
  return true;
}

std::size_t LockedWorkStealingExecutor::concurrency() const noexcept {
  return threads_.size();
}

std::size_t LockedWorkStealingExecutor::pending() const {
  std::size_t total = 0;
  for (const auto& q : queues_) {
    std::scoped_lock lk(q->mu);
    total += q->tasks.size();
  }
  return total;
}

void LockedWorkStealingExecutor::shutdown() {
  if (shut_down_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);
  {
    std::scoped_lock lk(idle_mu_);
    idle_cv_.notify_all();
  }
  threads_.clear();  // jthread joins; workers drain before exiting

  auto& tracer = common::Tracer::instance();
  const std::string prefix(name());
  tracer.set_counter(prefix + ".local_pops",
                     local_pops_.load(std::memory_order_relaxed));
  tracer.set_counter(prefix + ".steals",
                     steals_.load(std::memory_order_relaxed));
  tracer.set_counter(prefix + ".batch_posts",
                     batch_posts_.load(std::memory_order_relaxed));
}

void LockedWorkStealingExecutor::worker_main(int index) {
  ThreadBinding bind(this);
  t_pool = this;
  t_worker_index = index;
  for (;;) {
    Task task;
    if (take_task(index, task)) {
      run_task(task);
      continue;
    }
    std::unique_lock lk(idle_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      // Final drain check under the idle lock: a post may have landed
      // between the failed scan and here.
      lk.unlock();
      if (take_task(index, task)) {
        run_task(task);
        continue;
      }
      break;
    }
    idle_cv_.wait_for(lk, std::chrono::milliseconds{1});
  }
  t_pool = nullptr;
  t_worker_index = -1;
}

}  // namespace evmp::exec

// image_pipeline — the paper's Figure 2 logic at application scale: a
// burst of "camera frames" each needing background processing (S1, S3)
// with foreground progress (S2) and completion (S4) updates, using all
// four scheduling modes together:
//
//   * each frame's heavy work:     target virtual(worker) nowait
//   * per-frame progress updates:  target virtual(edt) nowait
//   * a parallel sharpen pass:     fork-join team inside the target block
//   * batch fan-out/fan-in:        name_as("frames") ... wait(frames)
//
// Run: ./build/examples/image_pipeline [--frames=N] [--width=K]
//      [--trace=out.json]   (Chrome trace of the whole run; load it in
//                            chrome://tracing or ui.perfetto.dev)

#include <cstdio>

#include "common/cli.hpp"
#include "common/sync.hpp"
#include "common/tracing.hpp"
#include "core/evmp.hpp"
#include "kernels/raytracer.hpp"

using evmp::common::Millis;

namespace {

/// "Capture" a frame by rendering it with the raytracer kernel, then apply
/// a parallel sharpen pass with a fork-join team.
std::uint64_t process_frame(int frame, int team_width) {
  evmp::kernels::RayTracerKernel tracer(48, 48);
  tracer.prepare();
  evmp::fj::Team team(team_width);
  tracer.run_parallel(team);  // the "omp parallel" inside the handler

  // Sharpen: 3x3 high-pass over the framebuffer (parallel over rows).
  const auto& fb = tracer.framebuffer();
  const int w = tracer.width();
  const int h = tracer.height();
  std::vector<std::uint32_t> sharpened(fb.size());
  evmp::fj::parallel_for(team, 1, h - 1, [&](long y) {
    for (int x = 1; x < w - 1; ++x) {
      const std::size_t idx = static_cast<std::size_t>(y) * w + x;
      auto channel = [&](int shift) {
        const int c = static_cast<int>((fb[idx] >> shift) & 0xff) * 5 -
                      static_cast<int>((fb[idx - 1] >> shift) & 0xff) -
                      static_cast<int>((fb[idx + 1] >> shift) & 0xff) -
                      static_cast<int>((fb[idx - w] >> shift) & 0xff) -
                      static_cast<int>((fb[idx + w] >> shift) & 0xff);
        return static_cast<std::uint32_t>(std::clamp(c, 0, 255));
      };
      sharpened[idx] = (channel(16) << 16) | (channel(8) << 8) | channel(0);
    }
  });

  std::uint64_t checksum = 0x9e3779b97f4a7c15ull + static_cast<unsigned>(frame);
  for (auto p : sharpened) checksum = checksum * 31 + p;
  return checksum;
}

}  // namespace

int main(int argc, char** argv) {
  const evmp::common::CliArgs args(argc, argv);
  const int frames = static_cast<int>(args.get_long("frames", 6));
  const int width = static_cast<int>(args.get_long("width", 3));
  const std::string trace_path = args.get("trace", "");
  if (!trace_path.empty()) {
    evmp::common::Tracer::instance().enable(true);
  }

  evmp::event::EventLoop edt("edt");
  edt.start();
  evmp::rt().register_edt("edt", edt);
  evmp::rt().create_worker("worker", 3);

  evmp::event::Gui gui(edt);
  auto& status = gui.add_label("status");
  auto& progress = gui.add_progress_bar("progress");

  std::atomic<int> frames_done{0};
  evmp::common::CountdownLatch submitted(static_cast<std::size_t>(frames));
  const evmp::common::Stopwatch wall;

  // The "capture" event handler: fires once per frame on the EDT.
  for (int frame = 0; frame < frames; ++frame) {
    edt.post([&, frame] {
      // //#omp target virtual(worker) name_as(frames)
      evmp::target("worker").name_as("frames", [&, frame] {
        const auto checksum = process_frame(frame, width);  // S1 + S3

        // //#omp target virtual(edt) nowait                   S2/S4
        evmp::target("edt").nowait([&, frame, checksum] {
          const int done = frames_done.fetch_add(1) + 1;
          progress.set_value(100 * done / frames);
          status.set_text("frame " + std::to_string(frame) + " done");
          std::printf("[edt]    frame %d displayed (checksum %llx), "
                      "progress %d%%\n",
                      frame, static_cast<unsigned long long>(checksum),
                      100 * done / frames);
        });
      });
      std::printf("[edt]    frame %d dispatched\n", frame);
      submitted.count_down();
    });
  }

  // The batch barrier: wait(frames). The tag only counts blocks already
  // submitted, so first let the EDT dispatch all capture events.
  submitted.wait();
  evmp::wait_tag("frames");
  edt.wait_until_idle();  // drain the S2/S4 updates the workers posted

  std::printf("\nProcessed %d frames in %.1f ms with worker offload + "
              "%d-wide fork-join sharpening.\n",
              frames, wall.elapsed_ms(), width);
  std::printf("EDT dispatched %llu events, max nesting %d, violations %llu\n",
              static_cast<unsigned long long>(edt.dispatched()),
              edt.max_nesting(),
              static_cast<unsigned long long>(gui.violations()));
  evmp::rt().clear();
  if (!trace_path.empty()) {
    evmp::common::Tracer::instance().enable(false);
    if (evmp::common::Tracer::instance().write_chrome_trace(trace_path)) {
      std::printf("trace with %zu spans written to %s\n",
                  evmp::common::Tracer::instance().size(),
                  trace_path.c_str());
    }
  }
  return gui.violations() == 0 ? 0 : 1;
}

// Quickstart: the paper's Figure 6 button-click handler, in EventMP.
//
// Build & run:   ./build/examples/quickstart
//
// Demonstrates the core workflow:
//   1. register the virtual targets (Table II):
//        an EDT target for the GUI event loop, a worker pool;
//   2. write the handler as *sequential-looking* code and annotate the
//      offloadable parts with target directives (fluent API);
//   3. the EDT stays responsive while the work runs on the worker target.

#include <cstdio>

#include "common/sync.hpp"
#include "core/evmp.hpp"

using evmp::common::Millis;

namespace {

/// Pretend to download a file and convert it to an image.
evmp::event::Image download_and_convert(int hashcode) {
  evmp::common::precise_sleep(Millis{80});  // networkDownload(hs)
  evmp::event::Image img;
  img.width = 8;
  img.height = 8;
  img.pixels.resize(64);
  for (std::size_t i = 0; i < img.pixels.size(); ++i) {
    img.pixels[i] = static_cast<std::uint32_t>(hashcode) * 2654435761u +
                    static_cast<std::uint32_t>(i);
  }
  evmp::common::precise_sleep(Millis{40});  // formatConvert(buf)
  return img;
}

}  // namespace

int main() {
  // --- setup: the GUI application's event loop and virtual targets -------
  evmp::event::EventLoop edt("edt");
  edt.start();
  evmp::rt().register_edt("edt", edt);        // virtual_target_register_edt
  evmp::rt().create_worker("worker", 2);      // virtual_target_create_worker

  evmp::event::Gui gui(edt);
  auto& panel_msg = gui.add_label("panel.msg");
  auto& panel_img = gui.add_image_view("panel.img");
  auto& button = gui.add_button("button");

  evmp::common::CountdownLatch app_done(1);

  // --- the Figure 6 callback, directive-annotated ------------------------
  edt.invoke_and_wait([&] {
    button.on_click([&] {
      panel_msg.set_text("Started EDT handling");
      std::printf("[edt]    %s\n", "Started EDT handling");
      const int hscode = 1234;  // getHashCode(info)

      // //#omp target virtual(worker) nowait
      evmp::target("worker").nowait([&, hscode] {
        std::printf("[worker] downloading and computing...\n");
        const auto img = download_and_convert(hscode);

        // //#omp target virtual(edt)  — GUI work hops back to the EDT
        evmp::target("edt").run([&] {
          panel_img.display(img);
          std::printf("[edt]    image displayed (checksum %llx)\n",
                      static_cast<unsigned long long>(img.checksum()));
        });
        // //#omp target virtual(edt) nowait
        evmp::target("edt").nowait([&] {
          panel_msg.set_text("Finished!");
          std::printf("[edt]    Finished!\n");
          app_done.count_down();
        });
      });
      // The EDT returns here immediately: the event loop is free for the
      // next event while the download runs.
      std::printf("[edt]    handler returned, EDT is responsive again\n");
    });
  });

  // --- drive it -----------------------------------------------------------
  button.click();

  // Show that the EDT is alive while the worker computes.
  for (int i = 0; i < 3; ++i) {
    evmp::common::precise_sleep(Millis{30});
    edt.invoke_and_wait(
        [i] { std::printf("[edt]    ...still dispatching (tick %d)\n", i); });
  }

  app_done.wait();
  edt.wait_until_idle();
  evmp::rt().clear();
  std::printf("GUI confinement violations: %llu (must be 0)\n",
              static_cast<unsigned long long>(gui.violations()));
  return gui.violations() == 0 ? 0 : 1;
}

// async_download — the future-work extension in action: non-blocking I/O
// integrated with the event-driven directive model.
//
// A button handler downloads a file via the AsyncIoService (no thread is
// occupied while the transfer is in flight), awaits it with the logical
// barrier (the EDT keeps dispatching other events), then processes the
// bytes on the worker target and displays the result.
//
// Run: ./build/examples/async_download

#include <cstdio>

#include "asyncio/async_io.hpp"
#include "common/sync.hpp"
#include "core/evmp.hpp"
#include "kernels/crypt.hpp"

int main() {
  evmp::event::EventLoop edt("edt");
  edt.start();
  evmp::rt().register_edt("edt", edt);
  evmp::rt().create_worker("worker", 2);

  evmp::io::AsyncIoService::Config io_cfg;
  io_cfg.network.base_latency = evmp::common::Millis{60};
  io_cfg.network.bytes_per_sec = 5e6;  // ~40ms for 200KB
  evmp::io::AsyncIoService io(io_cfg);

  evmp::common::CountdownLatch done(1);

  edt.post([&] {
    std::printf("[edt]    click: starting download (EDT stays live)\n");
    auto transfer = io.fetch_url("https://example.org/data.bin", 200'000);

    // The logical barrier: while ~100ms of network time elapses, the EDT
    // below keeps dispatching ticks; zero worker threads are blocked.
    evmp::rt().await_handle(transfer.handle());
    std::printf("[edt]    download complete: %zu bytes\n", transfer.size());

    // Heavy post-processing goes to the worker target (Figure 6 pattern).
    evmp::target("worker").await([&] {
      evmp::kernels::CryptKernel crypt(transfer.data().size());
      crypt.prepare();
      const auto checksum = crypt.run_sequential();
      std::printf("[worker] encrypted round-trip checksum: %llu blocks ok\n",
                  static_cast<unsigned long long>(checksum));
    });
    std::printf("[edt]    pipeline finished\n");
    done.count_down();
  });

  // Competing events that must keep flowing during the await.
  for (int i = 0; i < 5; ++i) {
    edt.post_delayed(
        [i] { std::printf("[edt]    tick %d dispatched during download\n", i); },
        evmp::common::Millis{15 * (i + 1)});
  }

  done.wait();
  edt.wait_until_idle();
  std::printf("io: %llu ops, %llu bytes; edt max nesting %d\n",
              static_cast<unsigned long long>(io.operations_completed()),
              static_cast<unsigned long long>(io.bytes_transferred()),
              edt.max_nesting());
  evmp::rt().clear();
  return 0;
}

// translator_demo — runs the evmpcc source-to-source translator in-process
// on the paper's §IV.A listing and prints both versions side by side,
// mirroring the compilation example of the paper.
//
// Run: ./build/examples/translator_demo

#include <cstdio>

#include "compilerlib/translator.hpp"

int main() {
  const char* annotated = R"(
void buttonOnClick() {
  label.set_text("Start Processing Task!");
  //#omp target virtual(worker) await
  {
    compute_half1(); // S1
    //#omp target virtual(edt) nowait
    {
      label.set_text("Task half finished"); // S2
    }
    compute_half2(); // S3
  }
  label.set_text("Task finished"); // S4
}
)";

  std::printf("=== annotated source (paper §IV.A) ===\n%s\n", annotated);

  evmp::compiler::TranslateOptions options;
  options.add_include = false;
  const auto result = evmp::compiler::translate_source(annotated, options);

  std::printf("=== evmpcc output (%d directives rewritten) ===\n%s\n",
              result.directives_rewritten, result.output.c_str());
  std::printf(
      "Each target block became a TargetRegion lambda submitted through\n"
      "Runtime::invoke_target_block — the same structure Pyjama generates\n"
      "for Java (TargetRegion_0 / TargetRegion_1 in the paper).\n");
  return result.directives_rewritten == 2 ? 0 : 1;
}

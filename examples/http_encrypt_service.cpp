// http_encrypt_service — the paper's §V.B case study as a runnable demo:
// an encryption service behind (a) a Jetty-style fixed thread pool and
// (b) a Pyjama-style dispatcher with a worker virtual target, loaded by a
// swarm of closed-loop virtual users.
//
// Run: ./build/examples/http_encrypt_service
//      [--users=20] [--requests=3] [--workers=4] [--payload=8192]
//      [--parallel]   (parallelise each request with a per-request team)
//      [--pooled]     (with --parallel: lease teams from fj::TeamPool
//                      instead of spawning one per request — the fix for
//                      the paper's Figure 9 oversubscription collapse)
//      [--adaptive]   (with --parallel: let the pool's WidthGovernor size
//                      each request's team from live load — wide when the
//                      service is idle, narrow under a request storm)
//      [--real-net]   (serve over real loopback HTTP instead of the
//                      in-process connectors: the epoll reactor accepts
//                      connections, the worker virtual target runs the
//                      same handler, and an open-loop client offers
//                      --rate req/s for --duration seconds)

#include <cstdio>

#include "common/cli.hpp"
#include "common/stats.hpp"
#include "core/runtime.hpp"
#include "forkjoin/team.hpp"
#include "forkjoin/team_pool.hpp"
#include "httpsim/connector.hpp"
#include "httpsim/encryption_service.hpp"
#include "httpsim/virtual_users.hpp"
#include "net/load_client.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"

namespace {

/// --real-net: the same service behind the epoll front end, over real
/// sockets, measured open-loop.
int run_real_net(const evmp::common::CliArgs& args,
                 const evmp::http::EncryptionService::Config& cfg,
                 int workers) {
  const auto conns = static_cast<std::size_t>(args.get_long("conns", 128));
  const double rate = args.get_double("rate", 500.0);
  const double duration = args.get_double("duration", 3.0);
  if (!evmp::net::raise_fd_limit(2 * conns + 512)) {
    std::fprintf(stderr, "could not raise RLIMIT_NOFILE for %zu conns\n",
                 conns);
  }

  evmp::Runtime rt;
  rt.create_worker("worker", workers);
  evmp::http::EncryptionService service(cfg);
  evmp::net::Server::Config sc;
  sc.mode = evmp::net::Server::Mode::kHandler;
  sc.handler = service.handler();
  evmp::net::Server server(rt, sc);
  server.start();

  evmp::net::LoadClient client(server.port(), conns, cfg.payload_bytes,
                               /*seed=*/7);
  const std::size_t up = client.connect_all();
  std::printf("real-net: %zu/%zu loopback connections to port %u\n", up,
              conns, server.port());
  if (up == 0) return 2;
  const evmp::net::RoundResult r =
      client.run_round(rate, duration, /*poisson=*/true,
                       /*drain_timeout_s=*/10.0);
  const evmp::common::LatencyQuantiles q = r.latency.quantiles();
  std::printf("real-net: offered %.0f req/s for %.1fs -> %llu ok, %llu "
              "shed, %llu errors\n",
              rate, duration, static_cast<unsigned long long>(r.ok),
              static_cast<unsigned long long>(r.shed),
              static_cast<unsigned long long>(r.errors));
  std::printf("          p50 %.2f ms, p99 %.2f ms, p999 %.2f ms\n",
              q.p50 / 1e6, q.p99 / 1e6, q.p999 / 1e6);
  server.stop();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const evmp::common::CliArgs args(argc, argv);
  evmp::http::VirtualUserOptions load;
  load.users = static_cast<int>(args.get_long("users", 20));
  load.requests_per_user = static_cast<int>(args.get_long("requests", 3));
  load.payload_bytes =
      static_cast<std::size_t>(args.get_long("payload", 8192));
  const int workers = static_cast<int>(args.get_long("workers", 4));
  const bool parallel = args.get_bool("parallel", false);
  const bool adaptive = args.get_bool("adaptive", false);
  const bool pooled = args.get_bool("pooled", false) || adaptive;

  evmp::http::EncryptionService::Config cfg;
  cfg.payload_bytes = load.payload_bytes;
  cfg.parallel_width = parallel ? 3 : 1;
  cfg.pooled_team = pooled;
  cfg.adaptive_width = adaptive;

  if (args.get_bool("real-net", false)) {
    return run_real_net(args, cfg, workers);
  }

  std::printf("HTTP encryption service: %d users x %d requests, %zuB "
              "payloads, %d workers%s%s\n\n",
              load.users, load.requests_per_user, load.payload_bytes,
              workers, parallel ? ", per-request omp parallel" : "",
              adaptive  ? " (adaptive pooled teams)"
              : pooled  ? " (pooled teams)"
                        : "");

  const auto helpers_before = evmp::fj::total_helper_threads_created();

  {
    evmp::http::EncryptionService service(cfg);
    evmp::http::JettyConnector jetty(workers, service.handler());
    const auto result = evmp::http::run_virtual_users(jetty, load);
    std::printf("jetty   fixed pool      : %7.1f resp/s, mean %.2f ms, "
                "p99 %.2f ms, %llu served\n",
                result.throughput_rps, result.latency_ms.mean(),
                result.latency_ms.p99(),
                static_cast<unsigned long long>(result.completed));
  }
  {
    evmp::http::EncryptionService service(cfg);
    evmp::http::PyjamaConnector pyjama(workers, service.handler());
    const auto result = evmp::http::run_virtual_users(pyjama, load);
    std::printf("pyjama  virtual target  : %7.1f resp/s, mean %.2f ms, "
                "p99 %.2f ms, %llu served\n",
                result.throughput_rps, result.latency_ms.mean(),
                result.latency_ms.p99(),
                static_cast<unsigned long long>(result.completed));
    std::printf("        dispatcher dispatched %llu requests and spent "
                "%.1f ms total inside handlers (offloading works)\n",
                static_cast<unsigned long long>(
                    pyjama.dispatcher().dispatched()),
                evmp::common::to_ms(pyjama.dispatcher().busy_time()));
  }
  if (parallel) {
    std::printf("\nfork-join helper threads created: %llu%s\n",
                static_cast<unsigned long long>(
                    evmp::fj::total_helper_threads_created() -
                    helpers_before),
                pooled ? " (pooled: flat regardless of request count)"
                       : " (one team per request — compare with --pooled)");
  }
  if (adaptive) {
    auto& pool = evmp::fj::TeamPool::instance();
    std::printf("width governor: %d concurrent leases at peak, %zu idle "
                "teams cached after trim\n",
                pool.leased_high_water(), pool.idle_count());
  }
  return 0;
}

// dashboard_annotated — evmpcc INPUT. This example is built through the
// full toolchain: CMake runs `evmpcc` on this file and compiles the
// translated output into the `annotated_dashboard` binary, exactly how a
// Pyjama user's annotated Java is compiled (paper §IV).
//
// The app: a monitoring dashboard whose refresh handler aggregates three
// data feeds in parallel, computes statistics with a traditional
// `parallel for` reduction, and keeps the UI thread free the whole time.

#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "common/sync.hpp"
#include "core/evmp.hpp"

namespace {

/// Simulated feed fetch: deterministic values with a little modeled delay.
std::vector<double> fetch_feed(int feed, int samples) {
  evmp::common::precise_sleep(evmp::common::Millis{20});
  std::vector<double> data(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    data[static_cast<std::size_t>(i)] =
        static_cast<double>((feed * 31 + i * 7) % 100);
  }
  return data;
}

}  // namespace

int main() {
  evmp::event::EventLoop edt("edt");
  edt.start();
  evmp::rt().register_edt("edt", edt);
  evmp::rt().create_worker("worker", 3);

  evmp::event::Gui gui(edt);
  auto& status = gui.add_label("status");
  auto& gauge = gui.add_progress_bar("gauge");

  std::vector<std::vector<double>> feeds(3);
  std::atomic<int> feeds_ready{0};
  evmp::common::CountdownLatch refreshed(1);

  // The "refresh" event handler.
  edt.post([&] {
    status.set_text("refreshing...");

    // Fan out one fetch per feed; all three may run concurrently.
    // firstprivate(feed) matters: the block outlives the loop iteration,
    // so it must capture the *value* of feed, not a reference to a stack
    // slot that is gone by the time the worker runs (default(shared)
    // would dangle — the C++ face of the paper's data-context rules).
    for (int feed = 0; feed < 3; ++feed) {
      //#omp target virtual(worker) name_as(feeds) firstprivate(feed)
      {
        feeds[static_cast<std::size_t>(feed)] = fetch_feed(feed, 4096);
        const int ready = feeds_ready.fetch_add(1) + 1;
        //#omp target virtual(edt) nowait firstprivate(ready)
        { gauge.set_value(ready * 30); }
      }
    }

    // Aggregate once every feed arrived, off the EDT, then report back.
    //#omp target virtual(worker) nowait
    {
      //#omp wait(feeds)
      double total = 0.0;
      double peak = 0.0;
      const int n = static_cast<int>(feeds[0].size());
      #pragma omp parallel for num_threads(4) schedule(static) \
          reduction(+: total) reduction(max: peak)
      for (int i = 0; i < n; ++i) {
        for (const auto& feed : feeds) {
          const double v = feed[static_cast<std::size_t>(i)];
          total += v;
          if (v > peak) peak = v;
        }
      }
      //#omp target virtual(edt) nowait firstprivate(total, peak)
      {
        gauge.set_value(100);
        status.set_text("total " + std::to_string(total) + ", peak " +
                        std::to_string(peak));
        std::printf("[edt] dashboard refreshed: total=%.0f peak=%.0f\n",
                    total, peak);
        refreshed.count_down();
      }
    }
    std::printf("[edt] refresh dispatched; UI thread already free\n");
  });

  refreshed.wait();
  edt.wait_until_idle();
  std::printf("violations=%llu (must be 0)\n",
              static_cast<unsigned long long>(gui.violations()));
  evmp::rt().clear();
  return gui.violations() == 0 ? 0 : 1;
}
